//! The shared filter–refinement engine behind RDT and RDT+ (Algorithm 1).
//!
//! The engine follows the paper's listing line by line:
//!
//! 1. **Filter phase** (lines 2–24): an expanding incremental NN search from
//!    the query. Each newly retrieved point `v` exchanges witness updates
//!    with every point of the filter set `F`, may trigger lazy accepts
//!    (Assertion 2), joins `F` (unless excluded by the RDT+ criterion), and
//!    tightens the termination bound
//!    `ω ← min(ω, d(q,v) / ((s/k)^{1/t} − 1))` for ranks `s > k`. The loop
//!    stops when `d(q,v) > ω`, when `s ≥ min(n, ⌊2^t·k⌋)`, or when the
//!    index is exhausted.
//! 2. **Refinement phase** (lines 25–32): every unresolved candidate with
//!    fewer than `k` witnesses is verified by a forward kNN query
//!    (`d_k(v) ≥ d(q,v)`); candidates with `W ≥ k` are lazily rejected
//!    (Assertion 1) at zero additional cost.
//!
//! **Witness-counter erratum.** The published listing increments `W(v)` under
//! the condition `d(q,x) > d(v,x)` and `W(x)` under `d(q,v) > d(v,x)`, which
//! contradicts the paper's own definition `W(x) = |{y ∈ F : d(x,y) <
//! d(x,q)}|` (and would break Assertions 1–2). We implement the definition:
//! `d(v,x) < d(q,x)` makes `v` a witness *of x*, and `d(v,x) < d(q,v)` makes
//! `x` a witness *of v*. See `DESIGN.md` §2.
//!
//! **Rank under ties.** The listing sets `s ← ρ_S(q, v)`, which assigns the
//! maximum rank to distance ties; a cursor cannot look ahead, so we use the
//! retrieval count. The two differ only on exact ties, a measure-zero event
//! for continuous data.

use crate::answer::{RdtQueryStats, RknnAnswer, Termination};
use crate::params::RdtParams;
use rknn_core::{
    CancelToken, Cancelled, CursorScratch, FilterCandidate, Metric, Neighbor, PointId,
    QueryScratch, SearchStats,
};
use rknn_index::KnnIndex;

/// Rows per witness-pass tile block: large enough to amortize the
/// per-block dispatch and bound transform, small enough to bound the
/// overshoot when `w_v` crosses `k` inside a fetched block.
const WITNESS_TILE: usize = 32;

/// The verification threshold `d_k(v)`: the distance from `v` to its k-th
/// nearest other point, `+∞` when fewer than `k` exist.
///
/// Runs through [`KnnIndex::cursor_bounded`] with the caller's scratch, so
/// every substrate — tree or scan — answers the forward query
/// allocation-amortized and threshold-pruned instead of through the boxed
/// default `knn` path.
fn dk_via_cursor<M, I>(
    index: &I,
    id: PointId,
    k: usize,
    scratch: &mut CursorScratch,
    stats: &mut SearchStats,
) -> f64
where
    M: Metric,
    I: KnnIndex<M> + ?Sized,
{
    let mut cursor = index.cursor_bounded(index.point(id), Some(id), k, scratch);
    let mut dk = f64::INFINITY;
    let mut got = 0usize;
    while got < k {
        match cursor.next() {
            Some(n) => {
                dk = n.dist;
                got += 1;
            }
            None => break,
        }
    }
    stats.absorb(&cursor.stats());
    if got < k {
        f64::INFINITY
    } else {
        dk
    }
}

/// Which flavor of the engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdtVariant {
    /// Algorithm 1 as published.
    Plain,
    /// With the §4.3 candidate-set reduction.
    Plus,
    /// Ablation: witness maintenance disabled — every candidate that
    /// survives the filter phase is verified explicitly. Isolates the
    /// contribution of lazy acceptance/rejection (§7.2/§8.2).
    NoWitness,
}

/// Runs the filter–refinement query.
///
/// `exclude` is the query's own id when `q ∈ S` (self-excluding convention);
/// `plus` enables the RDT+ candidate-set reduction of §4.3.
pub fn run_query<M, I>(
    index: &I,
    q: &[f64],
    exclude: Option<PointId>,
    params: RdtParams,
    plus: bool,
) -> RknnAnswer
where
    M: Metric,
    I: KnnIndex<M> + ?Sized,
{
    run_query_variant(
        index,
        q,
        exclude,
        params,
        if plus {
            RdtVariant::Plus
        } else {
            RdtVariant::Plain
        },
    )
}

/// How the scale parameter evolves during one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TSchedule {
    /// The fixed `t` of [`RdtParams`] (Algorithm 1 as published).
    Fixed,
    /// §9's future-work idea: re-estimate the local intrinsic
    /// dimensionality from the expanding neighborhood after every retrieval
    /// (an online Hill/MLE estimate over the observed distances) and use
    /// `t = safety · estimate`, clamped to `[params.t, ∞)` — the configured
    /// `t` acts as the floor. Larger safety factors push toward exactness;
    /// the Hill estimate tracks the local ID that MaxGED upper-bounds.
    Adaptive {
        /// Multiplier on the online estimate.
        safety: f64,
    },
}

/// Runs the filter–refinement query with an explicit [`RdtVariant`].
pub fn run_query_variant<M, I>(
    index: &I,
    q: &[f64],
    exclude: Option<PointId>,
    params: RdtParams,
    variant: RdtVariant,
) -> RknnAnswer
where
    M: Metric,
    I: KnnIndex<M> + ?Sized,
{
    run_query_scheduled(index, q, exclude, params, variant, TSchedule::Fixed)
}

/// Runs the filter–refinement query with an explicit variant and
/// scale-parameter schedule, allocating fresh working memory.
///
/// Batch callers that answer many queries should allocate one
/// [`QueryScratch`] per worker and call [`run_query_with`] instead; this
/// wrapper exists for one-off queries and produces byte-identical answers.
pub fn run_query_scheduled<M, I>(
    index: &I,
    q: &[f64],
    exclude: Option<PointId>,
    params: RdtParams,
    variant: RdtVariant,
    schedule: TSchedule,
) -> RknnAnswer
where
    M: Metric,
    I: KnnIndex<M> + ?Sized,
{
    let mut scratch = QueryScratch::new(index.dim().max(1));
    run_query_with(index, q, exclude, params, variant, schedule, &mut scratch)
}

/// A lazily filled, lock-free shared cache of verification thresholds
/// `d_k(·)`.
///
/// The refinement phase accepts an unresolved candidate `v` exactly when
/// `d_k(v) >= d(q, v)` — and `d_k(v)` does not depend on the query. In an
/// all-points batch the same point is verified from many different
/// queries, so recomputing its forward kNN each time is pure waste; all
/// workers of a batch share one `DkCache` (it only needs `&self`), compute
/// each threshold at most once-ish, and reuse the exact same
/// floating-point value afterwards. Acceptance decisions (and hence result
/// sets and terminations) are identical to the uncached engine; only the
/// *work counters* of queries that hit the cache shrink, which is the
/// point.
///
/// Slots are plain atomics with relaxed ordering: two workers racing on
/// the same unset slot both compute the identical deterministic `d_k` and
/// store the identical bits, so the race is benign — it can only duplicate
/// work, never change a value. Per-query work counters under a shared
/// cache therefore depend on scheduling; results never do.
#[derive(Debug)]
pub struct DkCache {
    k: usize,
    /// Bit patterns of the cached `d_k` values; [`DkCache::UNSET`] marks a
    /// slot not computed yet (a real `d_k` is never NaN — coordinates are
    /// finite — though it may be `+∞` when fewer than `k` other points
    /// exist).
    vals: Vec<std::sync::atomic::AtomicU64>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl DkCache {
    /// Sentinel bit pattern for "not computed yet": a NaN payload no
    /// arithmetic result ever carries.
    const UNSET: u64 = u64::MAX;

    /// An empty cache for rank `k`, pre-sized for `n` point ids.
    pub fn new(k: usize, n: usize) -> Self {
        let mut vals = Vec::with_capacity(n);
        vals.resize_with(n, || std::sync::atomic::AtomicU64::new(Self::UNSET));
        DkCache {
            k,
            vals,
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The rank this cache's thresholds were computed at.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `(hits, misses)` so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering::Relaxed;
        (self.hits.load(Relaxed), self.misses.load(Relaxed))
    }

    /// Number of slots currently holding a computed threshold.
    pub fn filled(&self) -> usize {
        use std::sync::atomic::Ordering::Relaxed;
        self.vals
            .iter()
            .filter(|s| s.load(Relaxed) != Self::UNSET)
            .count()
    }

    /// A copy for carrying the warm cache into a successor instance: same
    /// `k`, every computed threshold copied bit-for-bit, hit/miss counters
    /// zeroed. `&self` suffices — slots are read with the same relaxed
    /// loads queries use, so a copy taken while readers are still filling
    /// slots simply captures "whatever was computed so far"; every captured
    /// bit pattern is a value a fresh computation would also produce.
    pub fn warm_copy(&self) -> DkCache {
        use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
        DkCache {
            k: self.k,
            vals: self
                .vals
                .iter()
                .map(|s| AtomicU64::new(s.load(Relaxed)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns `d_k(id)`, computing it with one bounded forward cursor over
    /// the caller's scratch on a cache miss (`stats` absorbs the miss's
    /// index work). Ids beyond the cache's pre-sized range (points inserted
    /// after cache construction) are computed but not cached.
    pub fn dk_or_compute<M, I>(
        &self,
        index: &I,
        id: PointId,
        scratch: &mut CursorScratch,
        stats: &mut SearchStats,
    ) -> f64
    where
        M: Metric,
        I: KnnIndex<M> + ?Sized,
    {
        use std::sync::atomic::Ordering::Relaxed;
        if let Some(slot) = self.vals.get(id) {
            let bits = slot.load(Relaxed);
            if bits != Self::UNSET {
                self.hits.fetch_add(1, Relaxed);
                return f64::from_bits(bits);
            }
        }
        let dk = dk_via_cursor(index, id, self.k, scratch, stats);
        debug_assert!(dk.to_bits() != Self::UNSET);
        if let Some(slot) = self.vals.get(id) {
            slot.store(dk.to_bits(), Relaxed);
        }
        self.misses.fetch_add(1, Relaxed);
        dk
    }

    /// Extends the cached id range to `n` slots (new slots unset), so
    /// points inserted after construction get cached thresholds too.
    /// `&mut self`: maintenance runs between batches, never concurrently
    /// with queries.
    pub fn grow(&mut self, n: usize) {
        if n > self.vals.len() {
            self.vals
                .resize_with(n, || std::sync::atomic::AtomicU64::new(Self::UNSET));
        }
    }

    /// Localized invalidation after inserting or deleting point `p`: evicts
    /// exactly the slots whose cached ball contains `p`, plus `p`'s own,
    /// and returns how many were evicted.
    ///
    /// Soundness in both directions: an insert of `p` lowers `d_k(x)` only
    /// if `d(x, p) < d_k(x)`; a delete of `p` raises `d_k(x)` only if `p`
    /// was among `x`'s `k` nearest, i.e. `d(x, p) <= d_k(x)` against the
    /// still-cached pre-delete threshold. Evicting on `d(x, p) <= d_k(x)`
    /// therefore covers every slot either update can change (a `+∞`
    /// threshold always evicts — fewer than `k` neighbors existed, so any
    /// insert can finish the rank). Every slot evaluation runs through
    /// [`Metric::dist_le`], abandoning against the cached threshold, and is
    /// charged to `stats` — this is the per-update maintenance cost the
    /// dynamic experiments report.
    pub fn invalidate_near<M, I>(&mut self, index: &I, p: PointId, stats: &mut SearchStats) -> usize
    where
        M: Metric,
        I: KnnIndex<M> + ?Sized,
    {
        let metric = index.metric();
        let pc = index.point(p);
        let mut evicted = 0usize;
        for (x, slot) in self.vals.iter_mut().enumerate() {
            let bits = *slot.get_mut();
            if bits == Self::UNSET {
                continue;
            }
            if x == p {
                *slot.get_mut() = Self::UNSET;
                evicted += 1;
                continue;
            }
            stats.count_dist();
            if metric
                .dist_le(index.point(x), pc, f64::from_bits(bits))
                .is_some()
            {
                *slot.get_mut() = Self::UNSET;
                evicted += 1;
            }
        }
        evicted
    }
}

/// Runs the filter–refinement query against caller-owned working memory.
///
/// `scratch` supplies the cursor buffer, the filter-set bookkeeping vector,
/// and the candidate coordinate tile; all three are cleared on entry and
/// keep their capacity afterwards, so a worker reuses one scratch for every
/// query it executes. Results, terminations, and counters are identical to
/// [`run_query_scheduled`] — reuse changes where buffers live, never what
/// is computed.
///
/// The witness pass prunes its metric evaluations with
/// [`Metric::dist_lt`]: a pair's distance accumulation is abandoned as soon
/// as it provably exceeds every comparison radius still undecided for that
/// pair (`d(q, v)` while `v` needs witnesses — the larger of the two radii,
/// since the cursor yields `d(q, x) <= d(q, v)` — and `d(q, x)` once only
/// `x`'s census is open). Abandonment affects neither `witness_pairs` nor
/// `witness_dist_comps`: an abandoned evaluation still counts as one
/// distance computation, it just touches fewer coordinates.
///
/// The witness pass, like the traversal feeding it, evaluates every pair
/// through the one metric instance, so it runs in whatever kernel tier
/// that metric resolves to ([`rknn_core::KernelTier`]): cursor distances,
/// witness comparisons, and the verification kNN all agree within the
/// tier, and under the fast tier answer *sets* on tie-free inputs match
/// the exact tier while distances may differ by bounded ulps.
pub fn run_query_with<M, I>(
    index: &I,
    q: &[f64],
    exclude: Option<PointId>,
    params: RdtParams,
    variant: RdtVariant,
    schedule: TSchedule,
    scratch: &mut QueryScratch,
) -> RknnAnswer
where
    M: Metric,
    I: KnnIndex<M> + ?Sized,
{
    run_query_full(index, q, exclude, params, variant, schedule, scratch, None)
}

/// The fully parameterized engine entry point: caller-owned scratch plus an
/// optional [`DkCache`] of verification thresholds.
///
/// With a cache, queries whose refinement phase re-verifies an
/// already-known point skip the forward kNN query and reuse the exact
/// threshold value, so their `verified` counter is unchanged but their
/// index work shrinks. Without one (`None`), behavior and counters match
/// [`run_query_with`] exactly.
///
/// # Panics
///
/// Panics if a supplied cache was built for a different rank than
/// `params.k`.
#[allow(clippy::too_many_arguments)] // the batch driver is the only caller with all knobs
pub fn run_query_full<M, I>(
    index: &I,
    q: &[f64],
    exclude: Option<PointId>,
    params: RdtParams,
    variant: RdtVariant,
    schedule: TSchedule,
    scratch: &mut QueryScratch,
    dk_cache: Option<&DkCache>,
) -> RknnAnswer
where
    M: Metric,
    I: KnnIndex<M> + ?Sized,
{
    let never = CancelToken::never();
    match run_query_interruptible(
        index, q, exclude, params, variant, schedule, scratch, dk_cache, &never,
    ) {
        Ok(answer) => answer,
        Err(Cancelled) => unreachable!("a never-token cannot cancel"),
    }
}

/// [`run_query_full`] with a cooperative [`CancelToken`], checked at
/// block granularity: once per `WITNESS_TILE` (32) retrievals during the
/// filter phase and before each forward-kNN verification during
/// refinement — the two places where a query spends unbounded time. A
/// query whose token never trips is byte-identical (results, counters,
/// terminations) to the uncancellable entry points; a tripped token
/// returns [`Cancelled`] within one block of work and leaves only the
/// caller's reusable scratch behind (cleared on the next query).
///
/// This is the serving engine's deadline/cancellation hook: a wedged or
/// past-deadline query releases its worker instead of holding it to
/// completion.
///
/// # Panics
///
/// Panics if a supplied cache was built for a different rank than
/// `params.k`.
#[allow(clippy::too_many_arguments)] // the serving engine is the only caller with all knobs
pub fn run_query_interruptible<M, I>(
    index: &I,
    q: &[f64],
    exclude: Option<PointId>,
    params: RdtParams,
    variant: RdtVariant,
    schedule: TSchedule,
    scratch: &mut QueryScratch,
    dk_cache: Option<&DkCache>,
    cancel: &CancelToken,
) -> Result<RknnAnswer, Cancelled>
where
    M: Metric,
    I: KnnIndex<M> + ?Sized,
{
    if let Some(cache) = dk_cache {
        assert_eq!(cache.k(), params.k, "DkCache rank mismatch");
    }
    let plus = variant == RdtVariant::Plus;
    let witnesses_enabled = variant != RdtVariant::NoWitness;
    let k = params.k;
    let mut t = params.t;
    let metric = index.metric();
    let n = index
        .num_points()
        .saturating_sub(usize::from(exclude.is_some()));
    let mut cap = params.rank_cap(n);

    let mut omega = f64::INFINITY;
    let QueryScratch {
        cursor: cursor_scratch,
        filter,
        tile,
        wtile,
    } = scratch;
    filter.clear();
    tile.reset(index.dim().max(1));
    let mut excluded = 0usize;
    let mut lazy_accepts = 0usize;
    let mut witness_pairs = 0u64;
    let mut witness_dist_comps = 0u64;
    let mut s = 0usize;
    let mut termination = Termination::Exhausted;

    // Under a fixed scale parameter the filter phase never drains past the
    // rank cap, so the substrate may prune its stream to the cap-nearest
    // (the adaptive schedule can raise the cap mid-query and needs the
    // unbounded stream).
    let mut cursor = match schedule {
        TSchedule::Fixed => index.cursor_bounded(q, exclude, cap, cursor_scratch),
        TSchedule::Adaptive { .. } => index.cursor_with(q, exclude, cursor_scratch),
    };
    let mut inv_t = 1.0 / t;
    let kf = k as f64;
    // Online Hill state for TSchedule::Adaptive: with s observed distances
    // d_1..d_s (ascending), the MLE is -s / Σ ln(d_i / d_s)
    // = s / (s·ln d_s − Σ ln d_i); both terms update in O(1).
    let mut sum_ln_d = 0.0f64;
    let mut pos_count = 0usize;
    // In adaptive mode the dimensional test stays disarmed until the online
    // estimate has stabilized, so bounds computed from the floor t cannot
    // terminate the search prematurely.
    let mut test_armed = matches!(schedule, TSchedule::Fixed);

    if cancel.is_cancelled() {
        return Err(Cancelled);
    }

    // (An explicit loop rather than `while let`: the else-branch documents
    // the exhaustion case.)
    #[allow(clippy::while_let_loop)]
    loop {
        let Some(v) = cursor.next() else {
            // Index exhausted: s = n, every point was examined.
            break;
        };
        s += 1;
        // Cancellation checkpoint at tile-block granularity: one check per
        // WITNESS_TILE retrievals bounds the post-cancel overrun to a block
        // while keeping the checkpoint off the per-row hot path.
        if s.is_multiple_of(WITNESS_TILE) && cancel.is_cancelled() {
            return Err(Cancelled);
        }
        if let TSchedule::Adaptive { safety } = schedule {
            if v.dist > 0.0 {
                sum_ln_d += v.dist.ln();
                pos_count += 1;
            }
            // Re-estimate once a minimal neighborhood has been observed.
            if pos_count >= k.max(8) {
                let denom = pos_count as f64 * v.dist.ln() - sum_ln_d;
                if denom > 0.0 {
                    let hill = pos_count as f64 / denom;
                    let new_t = (safety * hill).max(params.t);
                    if new_t.is_finite() && new_t > 0.0 {
                        t = new_t;
                        inv_t = 1.0 / t;
                        cap = RdtParams::new(k, t).rank_cap(n);
                        test_armed = true;
                    }
                }
            }
        }
        let v_point = index.point(v.id);
        // Witness pass against the filter set (lines 8–19). Every filter
        // member is one maintenance pair (`witness_pairs`, the (s choose 2)
        // cost the paper bounds). Witness counts beyond k never influence a
        // decision, so the pair's *distance* is only evaluated while at
        // least one side is still undecided (`witness_dist_comps`) — the
        // decisions (and hence results and Figure 7 proportions) are
        // identical to the literal listing, at a fraction of the metric
        // evaluations.
        //
        // While v itself still needs witnesses (w_v < k) every pair shares
        // the uniform comparison radius d(q, v) — the farther of the two
        // open radii, since the cursor yields x.dist <= v.dist — so whole
        // blocks of the padded candidate tile stream through the SIMD
        // `Metric::dist_tile` kernel at that bound. Once w_v reaches k,
        // fully decided members are skipped and the remaining pairs fall
        // back to per-row `dist_lt` at the member-specific radius x.dist.
        // Both paths only *admit* distances into the exact comparisons
        // below (a distance at or beyond the open radii decides every
        // comparison negatively whether it arrives as a pruned evaluation
        // or an admitted value that fails the comparisons), and admitted
        // values are bit-identical across the tile and one-to-one kernels,
        // so decisions, counters and results match the row-by-row listing
        // exactly. Rows of a fetched block that post-crossing skipping
        // would not have evaluated are simply not consumed (bounded
        // overshoot of one block per query; they are not counted).
        let mut w_v = 0usize;
        if witnesses_enabled {
            witness_pairs += filter.len() as u64;
            let stride = tile.stride();
            let mut vpad_ready = false;
            let mut block = 0usize..0usize;
            for i in 0..filter.len() {
                let x_state = filter[i];
                let x_active = !x_state.accepted && x_state.witnesses < k;
                if x_active || w_v < k {
                    witness_dist_comps += 1;
                    let d_opt: Option<f64> = if block.contains(&i) {
                        let d = wtile.out[i - block.start];
                        (!d.is_nan()).then_some(d)
                    } else if w_v < k {
                        if !vpad_ready {
                            wtile.set_query(v_point);
                            vpad_ready = true;
                        }
                        let end = (i + WITNESS_TILE).min(filter.len());
                        let m = end - i;
                        if wtile.out.len() < m {
                            wtile.out.resize(m, 0.0);
                        }
                        if wtile.bounds.len() < m {
                            wtile.bounds.resize(m, 0.0);
                        }
                        wtile.bounds[..m].fill(v.dist);
                        metric.dist_tile(
                            &wtile.qpad,
                            &tile.padded()[i * stride..end * stride],
                            stride,
                            tile.dim(),
                            &wtile.bounds[..m],
                            &mut wtile.out[..m],
                        );
                        block = i..end;
                        let d = wtile.out[0];
                        (!d.is_nan()).then_some(d)
                    } else {
                        metric.dist_lt(v_point, tile.row(i), x_state.dist)
                    };
                    if let Some(d_vx) = d_opt {
                        let x = &mut filter[i];
                        if x_active && d_vx < x.dist {
                            x.witnesses += 1; // v is a witness of x.
                        }
                        if w_v < k && d_vx < v.dist {
                            w_v += 1; // x is a witness of v.
                        }
                    }
                }
                // Lazy accept (Assertion 2, line 16): the search has passed
                // 2·d(q,x), so x's witness census is complete.
                let x = &mut filter[i];
                if !x.accepted && x.witnesses < k && v.dist >= 2.0 * x.dist {
                    x.accepted = true;
                    lazy_accepts += 1;
                }
            }
        }
        // RDT+ candidate-set reduction (§4.3): drop v if its first witness
        // pass already disqualified it. (The first k retrieved points can
        // never reach k witnesses here, so the paper's "not applied to the
        // first k candidates" proviso is satisfied automatically.)
        if plus && w_v >= k {
            excluded += 1;
        } else {
            filter.push(FilterCandidate {
                id: v.id,
                dist: v.dist,
                witnesses: w_v,
                accepted: false,
            });
            tile.push(v_point);
        }
        // Dimensional test update (Theorem 1, lines 21–23).
        if test_armed && s > k && v.dist > 0.0 {
            let denom = (s as f64 / kf).powf(inv_t) - 1.0;
            if denom > 0.0 {
                let bound = v.dist / denom;
                if bound < omega {
                    omega = bound;
                }
            }
        }
        // Loop exit tests (line 24). The rank cap applies once the
        // dimensional test is armed: under the adaptive schedule the floor
        // t's cap must not truncate the search before the online estimate
        // has stabilized (degenerate data with zero distances never arms
        // it and is scanned fully).
        if v.dist > omega {
            termination = Termination::Omega;
            break;
        }
        if test_armed && s >= cap {
            termination = if s >= n {
                Termination::Exhausted
            } else {
                Termination::RankCap
            };
            break;
        }
    }
    let mut search = cursor.stats();
    drop(cursor);

    // Refinement phase (lines 25–32).
    let mut result: Vec<Neighbor> = Vec::new();
    let mut lazy_rejects = 0usize;
    let mut verified = 0usize;
    let mut verified_accepted = 0usize;
    let mut verify_stats = SearchStats::new();
    for cand in filter.iter() {
        if cand.accepted {
            result.push(Neighbor::new(cand.id, cand.dist));
            continue;
        }
        if cand.witnesses >= k {
            lazy_rejects += 1; // Assertion 1: cannot be a reverse neighbor.
            continue;
        }
        // Each verification is one bounded forward-kNN query — the
        // refinement-phase block — so the checkpoint sits in front of it.
        if cancel.is_cancelled() {
            return Err(Cancelled);
        }
        verified += 1;
        // The filter-phase cursor released `cursor_scratch` above, so the
        // verification queries reuse the same buffers on any substrate.
        let dk = match dk_cache {
            Some(cache) => cache.dk_or_compute(index, cand.id, cursor_scratch, &mut verify_stats),
            None => dk_via_cursor(index, cand.id, k, cursor_scratch, &mut verify_stats),
        };
        if dk >= cand.dist {
            verified_accepted += 1;
            result.push(Neighbor::new(cand.id, cand.dist));
        }
    }
    search.absorb(&verify_stats);
    rknn_core::neighbor::sort_neighbors(&mut result);

    Ok(RknnAnswer {
        result,
        stats: RdtQueryStats {
            retrieved: s,
            filter_set_size: filter.len(),
            excluded,
            lazy_accepts,
            lazy_rejects,
            verified,
            verified_accepted,
            witness_pairs,
            witness_dist_comps,
            omega,
            termination,
            search,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rknn_core::{BruteForce, Dataset, Euclidean, SearchStats};
    use rknn_index::LinearScan;
    use std::sync::Arc;
    use std::time::Duration;

    fn uniform(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.random::<f64>() * 10.0).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn candidate_accounting_partitions_retrieved() {
        let ds = uniform(400, 2, 50);
        let idx = LinearScan::build(ds, Euclidean);
        for plus in [false, true] {
            let ans = run_query(&idx, idx.point(3), Some(3), RdtParams::new(5, 3.0), plus);
            let st = &ans.stats;
            assert_eq!(
                st.verified + st.lazy_accepts + st.lazy_rejects + st.excluded,
                st.retrieved,
                "plus={plus}"
            );
            assert_eq!(st.filter_set_size + st.excluded, st.retrieved);
        }
    }

    #[test]
    fn huge_t_gives_exact_result() {
        // t far above MaxGED ⇒ Theorem 1 exactness.
        let ds = uniform(300, 3, 51);
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        for q in [0usize, 100, 299] {
            let ans = run_query(&idx, idx.point(q), Some(q), RdtParams::new(4, 50.0), false);
            let mut st = SearchStats::new();
            let truth = bf.rknn(q, 4, &mut st);
            assert_eq!(
                ans.ids(),
                truth.iter().map(|n| n.id).collect::<Vec<_>>(),
                "q={q}"
            );
        }
    }

    #[test]
    fn plus_has_full_recall_at_exhaustive_t() {
        // RDT+ may lose *precision* (lazy accepts act on witness counts
        // undercounted by exclusions), but it can never lose a true member
        // once the filter phase retrieves everything: exclusions and lazy
        // rejects both require k genuine witnesses, and verification is
        // exact.
        let ds = uniform(250, 2, 52);
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let ans = run_query(&idx, idx.point(7), Some(7), RdtParams::new(3, 40.0), true);
        let mut st = SearchStats::new();
        let truth: Vec<_> = bf.rknn(7, 3, &mut st).iter().map(|n| n.id).collect();
        let got: std::collections::HashSet<_> = ans.ids().into_iter().collect();
        for id in &truth {
            assert!(got.contains(id), "RDT+ missed true member {id}");
        }
    }

    #[test]
    fn small_t_terminates_early() {
        let ds = uniform(2000, 2, 53);
        let idx = LinearScan::build(ds, Euclidean);
        let ans = run_query(&idx, idx.point(0), Some(0), RdtParams::new(10, 1.0), false);
        assert!(ans.stats.retrieved <= 20, "rank cap 2^1·10 = 20");
        assert_ne!(ans.stats.termination, Termination::Exhausted);
    }

    #[test]
    fn k_larger_than_dataset_returns_everything() {
        let ds = uniform(12, 2, 54);
        let idx = LinearScan::build(ds, Euclidean);
        let ans = run_query(&idx, idx.point(0), Some(0), RdtParams::new(50, 5.0), false);
        assert_eq!(
            ans.result.len(),
            11,
            "all other points are trivially reverse neighbors"
        );
        assert_eq!(ans.stats.termination, Termination::Exhausted);
    }

    #[test]
    fn duplicate_points_do_not_divide_by_zero() {
        let mut rows = vec![vec![0.0, 0.0]; 30];
        rows.extend((0..30).map(|i| vec![i as f64 + 1.0, 0.0]));
        let ds = Dataset::from_rows(&rows).unwrap().into_shared();
        let idx = LinearScan::build(ds, Euclidean);
        // Query at the duplicate pile: first 29 retrieved distances are 0.
        let ans = run_query(&idx, idx.point(0), Some(0), RdtParams::new(3, 2.0), false);
        assert!(ans.stats.omega.is_finite() || ans.stats.retrieved <= 12);
        // All co-located duplicates are mutual reverse neighbors.
        assert!(ans.result.iter().filter(|n| n.dist == 0.0).count() > 0);
    }

    #[test]
    fn no_witness_ablation_matches_results_but_verifies_more() {
        let ds = uniform(500, 3, 56);
        let idx = LinearScan::build(ds, Euclidean);
        let params = RdtParams::new(5, 30.0);
        let with = run_query_variant(&idx, idx.point(9), Some(9), params, RdtVariant::Plain);
        let without = run_query_variant(&idx, idx.point(9), Some(9), params, RdtVariant::NoWitness);
        assert_eq!(with.ids(), without.ids(), "same exact result set");
        assert!(
            without.stats.verified > with.stats.verified,
            "disabling witnesses forces more explicit verifications: {} vs {}",
            without.stats.verified,
            with.stats.verified
        );
        assert_eq!(without.stats.witness_pairs, 0);
        assert_eq!(without.stats.witness_dist_comps, 0);
        assert_eq!(without.stats.lazy_accepts, 0);
        assert_eq!(without.stats.lazy_rejects, 0);
    }

    #[test]
    fn erratum_swapped_witness_lines_would_break_assertion_one() {
        // DESIGN.md §2: the published listing credits the witness to the
        // wrong counter. Simulate both readings over a real retrieval
        // sequence and compare against ground-truth censuses: the corrected
        // reading reproduces them; the literal listing does not, so lazy
        // rejection (Assertion 1) would discard true reverse neighbors.
        let ds = uniform(150, 2, 58);
        let q = 0usize;
        let m = Euclidean;
        let qp = ds.point(q).to_vec();
        let mut stream: Vec<(usize, f64)> = (1..ds.len())
            .map(|i| (i, m.dist(ds.point(i), &qp)))
            .collect();
        stream.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

        let simulate = |swapped: bool| -> Vec<usize> {
            let mut f: Vec<(usize, f64, usize)> = Vec::new(); // (id, dist, W)
            for &(v, dv) in &stream {
                let mut w_v = 0usize;
                for x in f.iter_mut() {
                    let d_vx = m.dist(ds.point(v), ds.point(x.0));
                    // Condition A (line 10): d(q,x) > d(v,x).
                    if d_vx < x.1 {
                        if swapped {
                            w_v += 1; // literal listing: increment W(v)
                        } else {
                            x.2 += 1; // definition: v witnesses x
                        }
                    }
                    // Condition B (line 13): d(q,v) > d(v,x).
                    if d_vx < dv {
                        if swapped {
                            x.2 += 1; // literal listing: increment W(x)
                        } else {
                            w_v += 1; // definition: x witnesses v
                        }
                    }
                }
                f.push((v, dv, w_v));
            }
            f.into_iter().map(|(_, _, w)| w).collect()
        };

        // True censuses over the retrieved prefix of each candidate.
        let truth: Vec<usize> = stream
            .iter()
            .map(|&(x, dxq)| {
                stream
                    .iter()
                    .filter(|&&(y, _)| y != x)
                    .filter(|&&(y, _)| m.dist(ds.point(x), ds.point(y)) < dxq)
                    .count()
            })
            .collect();
        let correct = simulate(false);
        let swapped = simulate(true);
        // The corrected reading never overcounts the census (it sees only
        // discovered points), so W(x) <= truth and Assertion 1 stays sound.
        for (w, t) in correct.iter().zip(&truth) {
            assert!(w <= t, "corrected reading overcounted: {w} > {t}");
        }
        // The literal listing overcounts for some candidate — it would
        // reject points whose true census is below k.
        let overcounts = swapped.iter().zip(&truth).filter(|(w, t)| w > t).count();
        assert!(
            overcounts > 0,
            "the swapped listing should overcount witnesses somewhere"
        );
    }

    #[test]
    fn witness_shortcut_preserves_decisions() {
        // The engine skips distance computations for decided pairs; the
        // *decisions* must match a literal re-count: every lazily rejected
        // candidate truly has ≥ k witnesses among the retrieved set, every
        // lazily accepted one has < k witnesses in its complete census.
        let ds = uniform(400, 2, 57);
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let k = 5;
        let ans = run_query(
            &idx,
            idx.point(11),
            Some(11),
            RdtParams::new(k, 60.0),
            false,
        );
        // Re-derive censuses by brute force over the whole dataset (the
        // filter phase retrieved everything at t = 60).
        let metric = Euclidean;
        let truth_census = |x: usize| -> usize {
            let dxq = metric.dist(ds.point(x), ds.point(11));
            (0..ds.len())
                .filter(|&y| y != x && y != 11)
                .filter(|&y| metric.dist(ds.point(x), ds.point(y)) < dxq)
                .count()
        };
        let accepted: std::collections::HashSet<_> = ans.ids().into_iter().collect();
        let mut checked = 0;
        for x in 0..ds.len() {
            if x == 11 {
                continue;
            }
            let census = truth_census(x);
            if accepted.contains(&x) {
                assert!(census < k, "accepted {x} has census {census} >= k");
            } else {
                assert!(census >= k, "rejected {x} has census {census} < k");
            }
            checked += 1;
        }
        assert_eq!(checked, ds.len() - 1);
    }

    #[test]
    fn cancellation_aborts_and_absence_changes_nothing() {
        let ds = uniform(600, 3, 59);
        let idx = LinearScan::build(ds, Euclidean);
        let params = RdtParams::new(5, 30.0);
        let mut scratch = QueryScratch::new(3);
        // A pre-tripped token aborts before any work.
        let tripped = CancelToken::new();
        tripped.cancel();
        let got = run_query_interruptible(
            &idx,
            idx.point(4),
            Some(4),
            params,
            RdtVariant::Plain,
            TSchedule::Fixed,
            &mut scratch,
            None,
            &tripped,
        );
        assert_eq!(got.unwrap_err(), Cancelled);
        // An untripped token is byte-identical to the uncancellable path,
        // including all work counters — the checkpoints only read.
        let live = CancelToken::with_deadline(std::time::Instant::now() + Duration::from_secs(60));
        let with_token = run_query_interruptible(
            &idx,
            idx.point(4),
            Some(4),
            params,
            RdtVariant::Plain,
            TSchedule::Fixed,
            &mut scratch,
            None,
            &live,
        )
        .unwrap();
        let plain = run_query(&idx, idx.point(4), Some(4), params, false);
        assert_eq!(with_token.ids(), plain.ids());
        assert_eq!(with_token.stats, plain.stats);
        let bits: Vec<u64> = with_token.result.iter().map(|n| n.dist.to_bits()).collect();
        let want: Vec<u64> = plain.result.iter().map(|n| n.dist.to_bits()).collect();
        assert_eq!(bits, want);
    }

    #[test]
    fn external_query_location() {
        let ds = uniform(200, 2, 55);
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let q = vec![5.0, 5.0];
        let ans = run_query(&idx, &q, None, RdtParams::new(5, 40.0), false);
        let mut st = SearchStats::new();
        let truth = bf.rknn_external(&q, 5, &mut st);
        assert_eq!(ans.ids(), truth.iter().map(|n| n.id).collect::<Vec<_>>());
    }
}
