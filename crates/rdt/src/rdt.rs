//! RDT — Algorithm 1 of the paper.

use crate::answer::RknnAnswer;
use crate::engine::run_query;
use crate::params::RdtParams;
use rknn_core::{Metric, PointId};
use rknn_index::KnnIndex;

/// Reverse k-nearest neighbor queries by Dimensional Testing.
///
/// `Rdt` is a thin, reusable handle around [`RdtParams`]; all state is
/// per-query, so one handle can serve many queries (and many threads, since
/// queries only need `&self` and a shared index).
///
/// # Example
///
/// ```
/// use rknn_core::{Dataset, Euclidean};
/// use rknn_index::{KnnIndex, LinearScan};
/// use rknn_rdt::{Rdt, RdtParams};
///
/// let ds = Dataset::from_rows(&[
///     vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0], vec![9.0, 9.0],
/// ]).unwrap().into_shared();
/// let index = LinearScan::build(ds, Euclidean);
/// let rdt = Rdt::new(RdtParams::new(1, 8.0));
/// let answer = rdt.query(&index, 0);
/// // The two near points have point 0 as their nearest neighbor;
/// // the far point does not.
/// assert_eq!(answer.ids(), vec![1, 2]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Rdt {
    params: RdtParams,
}

impl Rdt {
    /// Creates an RDT query handle.
    pub fn new(params: RdtParams) -> Self {
        Rdt { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> RdtParams {
        self.params
    }

    /// Answers a reverse-kNN query located at dataset point `q`.
    pub fn query<M, I>(&self, index: &I, q: PointId) -> RknnAnswer
    where
        M: Metric,
        I: KnnIndex<M> + ?Sized,
    {
        run_query(index, index.point(q), Some(q), self.params, false)
    }

    /// Answers a reverse-kNN query at an arbitrary location `q ∉ S`.
    pub fn query_at<M, I>(&self, index: &I, q: &[f64]) -> RknnAnswer
    where
        M: Metric,
        I: KnnIndex<M> + ?Sized,
    {
        run_query(index, q, None, self.params, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rknn_core::{BruteForce, Dataset, Euclidean, SearchStats};
    use rknn_index::{CoverTree, LinearScan, VpTree};
    use std::sync::Arc;

    fn clustered(n: usize, seed: u64) -> Arc<Dataset> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let c = (i % 4) as f64 * 8.0;
                vec![c + rng.random::<f64>(), c + rng.random::<f64>()]
            })
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn recall_is_monotone_in_t() {
        let ds = clustered(600, 60);
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        let queries = [5usize, 123, 402];
        let mut prev_recall = 0.0;
        for t in [1.0, 2.0, 4.0, 8.0, 16.0] {
            let rdt = Rdt::new(RdtParams::new(10, t));
            let mut hits = 0usize;
            let mut total = 0usize;
            for &q in &queries {
                let truth: std::collections::HashSet<_> =
                    bf.rknn(q, 10, &mut st).iter().map(|n| n.id).collect();
                let got = rdt.query(&idx, q);
                hits += got.result.iter().filter(|n| truth.contains(&n.id)).count();
                total += truth.len();
            }
            let recall = if total == 0 {
                1.0
            } else {
                hits as f64 / total as f64
            };
            assert!(recall >= prev_recall - 0.05, "recall dropped hard at t={t}");
            prev_recall = prev_recall.max(recall);
        }
        assert!(
            prev_recall >= 0.99,
            "exhaustive t reaches full recall, got {prev_recall}"
        );
    }

    #[test]
    fn no_false_positives_ever() {
        // RDT's accepts are certificates: every reported point is a true
        // reverse neighbor regardless of t.
        let ds = clustered(400, 61);
        let idx = CoverTree::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        for t in [0.5, 1.5, 3.0, 6.0] {
            let rdt = Rdt::new(RdtParams::new(5, t));
            for q in [0usize, 200, 399] {
                let truth: std::collections::HashSet<_> =
                    bf.rknn(q, 5, &mut st).iter().map(|n| n.id).collect();
                let got = rdt.query(&idx, q);
                for n in &got.result {
                    assert!(truth.contains(&n.id), "false positive at t={t}, q={q}");
                }
            }
        }
    }

    #[test]
    fn substrate_agreement() {
        // The same parameters over different substrates give identical
        // result sets (cursor order may differ on ties, results may not).
        let ds = clustered(300, 62);
        let linear = LinearScan::build(ds.clone(), Euclidean);
        let cover = CoverTree::build(ds.clone(), Euclidean);
        let vp = VpTree::build(ds, Euclidean);
        let rdt = Rdt::new(RdtParams::new(8, 12.0));
        for q in [1usize, 50, 299] {
            let a = rdt.query(&linear, q).ids();
            let b = rdt.query(&cover, q).ids();
            let c = rdt.query(&vp, q).ids();
            assert_eq!(a, b, "linear vs cover at q={q}");
            assert_eq!(a, c, "linear vs vp at q={q}");
        }
    }

    #[test]
    fn query_stats_reflect_configuration() {
        // The retrieval depth is monotone in t. Total distance work is NOT
        // (§8.1's "conflicting influences"): small t leaves more candidates
        // to explicit verification, large t pays witness maintenance on a
        // bigger filter set — so only structural monotonicities are
        // asserted here.
        let ds = clustered(500, 63);
        let idx = LinearScan::build(ds, Euclidean);
        let small = Rdt::new(RdtParams::new(10, 1.0)).query(&idx, 0);
        let large = Rdt::new(RdtParams::new(10, 6.0)).query(&idx, 0);
        assert!(small.stats.retrieved <= large.stats.retrieved);
        assert!(small.stats.witness_pairs <= large.stats.witness_pairs);
        assert!(small.stats.filter_set_size <= large.stats.filter_set_size);
    }
}
