//! Batch RkNN execution: many queries, few allocations, all cores.
//!
//! The paper's experiments (§7) answer an RkNN query from *every* point of
//! the dataset; serving heavy traffic means the same shape — a stream of
//! queries against one shared index. This module is the driver for that
//! workload:
//!
//! * each worker owns one [`rknn_core::QueryScratch`], so cursor buffers, filter-set
//!   slots and the candidate coordinate tile are allocated once per worker
//!   rather than once per query;
//! * the query list is sharded into contiguous chunks across scoped worker
//!   threads, each writing answers into a disjoint slice of the output —
//!   no locks, no channels;
//! * answers come back indexed by query position and statistics are merged
//!   in query order, so the outcome (including every aggregate counter) is
//!   deterministic and independent of worker count and scheduling.
//!
//! Every query runs through [`crate::engine::run_query_with`], which also prunes
//! witness-pass metric evaluations via [`rknn_core::Metric::dist_lt`]; see
//! the crate docs for what early abandonment does (and does not) change in
//! the work counters.

use crate::algorithm::{run_algorithm_batch, RdtAlgorithm, RknnAlgorithm};
use crate::answer::{RknnAnswer, Termination};
use crate::engine::{RdtVariant, TSchedule};
use crate::params::RdtParams;
use rknn_core::{Metric, PointId, SearchStats};
use rknn_index::KnnIndex;
use std::time::{Duration, Instant};

/// Configuration of a batch run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Worker threads. `0` means one worker per available CPU.
    pub threads: usize,
    /// Engine variant (RDT, RDT+, or the no-witness ablation).
    pub variant: RdtVariant,
    /// Scale-parameter schedule.
    pub schedule: TSchedule,
    /// Reuse verification thresholds `d_k(·)` across the batch through a
    /// single lock-free [`crate::engine::DkCache`] shared by every worker. Results and
    /// terminations are identical either way; with reuse on, the per-query
    /// *work counters* of cache-hitting queries shrink (and, because the
    /// shared cache fills racily, depend on scheduling), so turn this off
    /// when byte-identical per-query statistics against a standalone
    /// engine run matter more than throughput.
    pub reuse_dk: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            threads: 0,
            variant: RdtVariant::Plain,
            schedule: TSchedule::Fixed,
            reuse_dk: true,
        }
    }
}

impl BatchConfig {
    /// A sequential configuration (one worker, no thread spawn).
    pub fn sequential() -> Self {
        BatchConfig {
            threads: 1,
            ..BatchConfig::default()
        }
    }

    /// Sets the worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the engine variant.
    pub fn with_variant(mut self, variant: RdtVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Enables or disables verification-threshold reuse.
    pub fn with_dk_reuse(mut self, reuse: bool) -> Self {
        self.reuse_dk = reuse;
        self
    }

    /// The equivalent [`RdtAlgorithm`] for the algorithm-generic driver
    /// (unprepared — the caller or the batch wrapper runs
    /// [`RknnAlgorithm::prepare`]).
    pub fn algorithm(&self, params: RdtParams) -> RdtAlgorithm {
        RdtAlgorithm::new(params)
            .with_variant(self.variant)
            .with_schedule(self.schedule)
            .with_dk_reuse(self.reuse_dk)
    }
}

/// Deterministic aggregate of per-query statistics over a batch.
///
/// All sums are taken in query order, so two runs over the same queries
/// agree exactly regardless of worker count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchStats {
    /// Number of queries executed.
    pub queries: usize,
    /// Total reported reverse neighbors.
    pub result_members: usize,
    /// Total candidates retrieved by the expanding searches.
    pub retrieved: usize,
    /// Total witness-maintenance pair updates.
    pub witness_pairs: u64,
    /// Total witness-maintenance distance evaluations.
    pub witness_dist_comps: u64,
    /// Total candidates verified by explicit forward kNN queries.
    pub verified: usize,
    /// Total lazy accepts (Assertion 2).
    pub lazy_accepts: usize,
    /// Total lazy rejects (Assertion 1) plus RDT+ exclusions.
    pub lazy_rejects: usize,
    /// Total index work (cursor expansion + verification kNN).
    pub search: SearchStats,
    /// Queries whose filter phase the dimensional test terminated.
    pub terminated_omega: usize,
    /// Queries stopped by the rank cap.
    pub terminated_rank_cap: usize,
    /// Queries that exhausted the index.
    pub terminated_exhausted: usize,
}

impl BatchStats {
    /// Folds one answer into the aggregate.
    fn absorb(&mut self, ans: &RknnAnswer) {
        let st = &ans.stats;
        self.queries += 1;
        self.result_members += ans.result.len();
        self.retrieved += st.retrieved;
        self.witness_pairs += st.witness_pairs;
        self.witness_dist_comps += st.witness_dist_comps;
        self.verified += st.verified;
        self.lazy_accepts += st.lazy_accepts;
        self.lazy_rejects += st.lazy_rejects + st.excluded;
        self.search.absorb(&st.search);
        match st.termination {
            Termination::Omega => self.terminated_omega += 1,
            Termination::RankCap => self.terminated_rank_cap += 1,
            Termination::Exhausted => self.terminated_exhausted += 1,
        }
    }

    /// Total distance computations across index work and witness
    /// maintenance — the paper's dominant cost measure.
    pub fn total_dist_comps(&self) -> u64 {
        self.search.dist_computations + self.witness_dist_comps
    }
}

/// The outcome of a batch run.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One answer per query, in the order the queries were supplied.
    pub answers: Vec<RknnAnswer>,
    /// Query-order aggregate of the per-query statistics.
    pub stats: BatchStats,
    /// Wall-clock time of the whole batch (excluding index construction).
    pub elapsed: Duration,
    /// Worker threads actually used.
    pub threads: usize,
}

/// Answers one RkNN query per supplied dataset point, sharded across
/// scoped worker threads with one [`rknn_core::QueryScratch`] per worker.
///
/// Each query is located at its point and self-excluding, matching the
/// paper's experimental protocol. Answers and terminations are
/// byte-identical to running [`crate::engine::run_query_scheduled`] over
/// the same ids sequentially; the per-query and aggregate *work counters*
/// match too only with [`BatchConfig::reuse_dk`] disabled (under the
/// default shared [`crate::engine::DkCache`], cache-hitting queries do
/// less index work, scheduling-dependently — see [`BatchConfig::reuse_dk`]).
///
/// This is a thin RDT-flavored wrapper over the algorithm-generic
/// [`run_algorithm_batch`] driver: it builds the equivalent
/// [`RdtAlgorithm`] (sharing one `d_k` cache across every worker of the
/// batch), runs the generic driver, and folds the per-query
/// [`crate::answer::RdtQueryStats`] into the RDT-specific [`BatchStats`].
pub fn run_batch<M, I>(
    index: &I,
    queries: &[PointId],
    params: RdtParams,
    cfg: &BatchConfig,
) -> BatchOutcome
where
    M: Metric,
    I: KnnIndex<M> + Sync + ?Sized,
{
    let start = Instant::now();
    let mut algo = cfg.algorithm(params);
    algo.prepare(index);
    let out = run_algorithm_batch(&algo, index, queries, cfg.threads);
    let mut stats = BatchStats::default();
    for ans in &out.answers {
        stats.absorb(ans);
    }
    BatchOutcome {
        answers: out.answers,
        stats,
        elapsed: start.elapsed(),
        threads: out.threads,
    }
}

/// Answers an RkNN query from **every** point of the index — the paper's
/// all-points experimental workload — via [`run_batch`].
pub fn run_all_points<M, I>(index: &I, params: RdtParams, cfg: &BatchConfig) -> BatchOutcome
where
    M: Metric,
    I: KnnIndex<M> + Sync + ?Sized,
{
    let queries: Vec<PointId> = (0..index.num_points()).collect();
    run_batch(index, &queries, params, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_query_scheduled;
    use rknn_core::Euclidean;
    use rknn_index::LinearScan;

    fn index(n: usize, dim: usize, seed: u64) -> LinearScan<Euclidean> {
        let ds = rknn_data::uniform_cube(n, dim, seed).into_shared();
        LinearScan::build(ds, Euclidean)
    }

    #[test]
    fn batch_matches_sequential_queries_exactly() {
        let idx = index(300, 4, 90);
        let params = RdtParams::new(5, 4.0);
        // dk reuse off: per-query statistics must be byte-identical to a
        // standalone engine run, not just the results.
        let cfg = BatchConfig::default().with_threads(3).with_dk_reuse(false);
        let out = run_all_points(&idx, params, &cfg);
        assert_eq!(out.answers.len(), 300);
        for (q, ans) in out.answers.iter().enumerate() {
            let want = run_query_scheduled(
                &idx,
                idx.point(q),
                Some(q),
                params,
                RdtVariant::Plain,
                TSchedule::Fixed,
            );
            assert_eq!(ans.ids(), want.ids(), "q={q}");
            assert_eq!(ans.stats, want.stats, "q={q}");
        }
    }

    #[test]
    fn thread_count_does_not_change_outcome() {
        let idx = index(250, 3, 91);
        let params = RdtParams::new(4, 3.0);
        let base = run_all_points(
            &idx,
            params,
            &BatchConfig::sequential().with_dk_reuse(false),
        );
        for threads in [2usize, 4, 7] {
            let cfg = BatchConfig::default()
                .with_threads(threads)
                .with_dk_reuse(false);
            let out = run_all_points(&idx, params, &cfg);
            assert_eq!(out.stats, base.stats, "threads={threads}");
            for (a, b) in out.answers.iter().zip(&base.answers) {
                assert_eq!(a.ids(), b.ids());
            }
        }
    }

    #[test]
    fn dk_reuse_changes_work_but_not_answers() {
        let idx = index(350, 4, 95);
        let params = RdtParams::new(5, 6.0);
        let plain = run_all_points(
            &idx,
            params,
            &BatchConfig::sequential().with_dk_reuse(false),
        );
        for threads in [1usize, 3] {
            let cached = run_all_points(
                &idx,
                params,
                &BatchConfig::default()
                    .with_threads(threads)
                    .with_dk_reuse(true),
            );
            for (q, (a, b)) in cached.answers.iter().zip(&plain.answers).enumerate() {
                assert_eq!(a.ids(), b.ids(), "threads={threads} q={q}");
                assert_eq!(a.result, b.result, "threads={threads} q={q}");
                assert_eq!(
                    a.stats.termination, b.stats.termination,
                    "threads={threads} q={q}"
                );
                assert_eq!(
                    a.stats.verified, b.stats.verified,
                    "threads={threads} q={q}"
                );
            }
            // Filter-phase counters are untouched by verification caching.
            assert_eq!(cached.stats.retrieved, plain.stats.retrieved);
            assert_eq!(cached.stats.witness_pairs, plain.stats.witness_pairs);
            assert_eq!(
                cached.stats.witness_dist_comps,
                plain.stats.witness_dist_comps
            );
            // Reuse can only reduce index work.
            assert!(
                cached.stats.search.dist_computations <= plain.stats.search.dist_computations,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn aggregate_stats_sum_per_query_stats() {
        let idx = index(200, 2, 92);
        let params = RdtParams::new(3, 5.0);
        let out = run_all_points(&idx, params, &BatchConfig::default().with_threads(2));
        let mut retrieved = 0usize;
        let mut dist = 0u64;
        let mut terms = 0usize;
        for ans in &out.answers {
            retrieved += ans.stats.retrieved;
            dist += ans.stats.total_dist_comps();
            terms += 1;
        }
        assert_eq!(out.stats.queries, 200);
        assert_eq!(out.stats.retrieved, retrieved);
        assert_eq!(out.stats.total_dist_comps(), dist);
        assert_eq!(
            out.stats.terminated_omega
                + out.stats.terminated_rank_cap
                + out.stats.terminated_exhausted,
            terms
        );
    }

    #[test]
    fn explicit_query_subset_and_plus_variant() {
        let idx = index(220, 3, 93);
        let params = RdtParams::new(4, 6.0);
        let queries = [0usize, 7, 113, 219];
        let cfg = BatchConfig::default()
            .with_threads(2)
            .with_variant(RdtVariant::Plus);
        let out = run_batch(&idx, &queries, params, &cfg);
        assert_eq!(out.answers.len(), queries.len());
        for (i, &q) in queries.iter().enumerate() {
            let want = run_query_scheduled(
                &idx,
                idx.point(q),
                Some(q),
                params,
                RdtVariant::Plus,
                TSchedule::Fixed,
            );
            assert_eq!(out.answers[i].ids(), want.ids(), "q={q}");
        }
    }

    #[test]
    fn empty_query_list_is_fine() {
        let idx = index(50, 2, 94);
        let out = run_batch(&idx, &[], RdtParams::new(3, 3.0), &BatchConfig::default());
        assert!(out.answers.is_empty());
        assert_eq!(out.stats, BatchStats::default());
    }
}
