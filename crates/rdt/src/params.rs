//! Query parameters and automatic scale-parameter selection (§6).

use rknn_core::{Dataset, Metric};
use rknn_lid::{GpEstimator, HillEstimator, IdEstimator, TakensEstimator};
use std::sync::Arc;

/// Parameters of an RDT/RDT+ query.
///
/// `k` is the reverse-neighbor rank; `t > 0` is the scale parameter
/// controlling the time/accuracy tradeoff: Theorem 1 guarantees an exact
/// result whenever `t ≥ MaxGED(S ∪ {q}, k)`, while small `t` terminates the
/// expanding search aggressively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RdtParams {
    /// Reverse-neighbor rank `k ≥ 1`.
    pub k: usize,
    /// Scale parameter `t > 0`.
    pub t: f64,
}

impl RdtParams {
    /// Creates parameters.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `t` is not strictly positive and finite.
    pub fn new(k: usize, t: f64) -> Self {
        assert!(k > 0, "reverse-neighbor rank k must be positive");
        assert!(
            t.is_finite() && t > 0.0,
            "scale parameter t must be positive and finite"
        );
        RdtParams { k, t }
    }

    /// The filter-phase rank cap `min(n, ⌊2^t·k⌋)` of Algorithm 1 line 24.
    pub fn rank_cap(&self, n: usize) -> usize {
        let cap = (2.0f64).powf(self.t) * self.k as f64;
        if !cap.is_finite() || cap >= n as f64 {
            n
        } else {
            (cap.floor() as usize).max(1)
        }
    }
}

/// How the scale parameter is chosen before querying.
///
/// The estimator-backed policies implement the paper's §6: `t` is set to a
/// one-off global estimate of the dataset's intrinsic dimensionality, after
/// which "the RDT termination criterion … is no longer a guarantee but a
/// heuristic requiring experimental validation".
#[derive(Debug, Clone)]
pub enum ScalePolicy {
    /// A user-supplied constant.
    Fixed(f64),
    /// Averaged Hill/MLE LID (paper: `RDT+(MLE)`).
    Mle(HillEstimator),
    /// Grassberger–Procaccia correlation dimension (paper: `RDT+(GP)`).
    Gp(GpEstimator),
    /// Takens correlation dimension (paper: `RDT+(Takens)`).
    Takens(TakensEstimator),
}

impl ScalePolicy {
    /// Resolves the policy into a concrete `t` for a dataset.
    ///
    /// Estimates are clamped below at 0.5 so that a degenerate estimator
    /// outcome cannot collapse the search to a single step.
    pub fn resolve(&self, ds: &Arc<Dataset>, metric: &dyn Metric) -> f64 {
        let raw = match self {
            ScalePolicy::Fixed(t) => *t,
            ScalePolicy::Mle(e) => e.estimate(ds, metric).id,
            ScalePolicy::Gp(e) => e.estimate(ds, metric).id,
            ScalePolicy::Takens(e) => e.estimate(ds, metric).id,
        };
        raw.max(0.5)
    }

    /// Display name matching the paper's plot labels.
    pub fn label(&self) -> &'static str {
        match self {
            ScalePolicy::Fixed(_) => "fixed",
            ScalePolicy::Mle(_) => "MLE",
            ScalePolicy::Gp(_) => "GP",
            ScalePolicy::Takens(_) => "Takens",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rknn_core::Euclidean;

    #[test]
    fn rank_cap_growth() {
        let p = RdtParams::new(10, 3.0);
        assert_eq!(p.rank_cap(1_000_000), 80);
        assert_eq!(p.rank_cap(50), 50, "capped by n");
        // Huge t saturates at n without overflow.
        let p = RdtParams::new(10, 500.0);
        assert_eq!(p.rank_cap(123), 123);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = RdtParams::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "t must be positive")]
    fn non_positive_t_rejected() {
        let _ = RdtParams::new(1, 0.0);
    }

    #[test]
    fn fixed_policy_resolves_to_constant() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0]])
            .unwrap()
            .into_shared();
        assert_eq!(ScalePolicy::Fixed(7.5).resolve(&ds, &Euclidean), 7.5);
        assert_eq!(ScalePolicy::Fixed(7.5).label(), "fixed");
    }

    #[test]
    fn estimator_policies_track_intrinsic_dimension() {
        let mut rng = SmallRng::seed_from_u64(3);
        let rows: Vec<Vec<f64>> = (0..900)
            .map(|_| vec![rng.random::<f64>(), rng.random::<f64>()])
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap().into_shared();
        let t_gp = ScalePolicy::Gp(GpEstimator::new()).resolve(&ds, &Euclidean);
        let t_tak = ScalePolicy::Takens(TakensEstimator::new()).resolve(&ds, &Euclidean);
        let t_mle = ScalePolicy::Mle(HillEstimator {
            neighbors: 50,
            ..HillEstimator::default()
        })
        .resolve(&ds, &Euclidean);
        for (label, t) in [("GP", t_gp), ("Takens", t_tak), ("MLE", t_mle)] {
            assert!(t > 1.0 && t < 3.5, "{label} resolved to {t}");
        }
    }

    #[test]
    fn degenerate_estimates_are_clamped() {
        // Two points cannot support a CD estimate → raw 0.0 → clamped.
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0]])
            .unwrap()
            .into_shared();
        let t = ScalePolicy::Gp(GpEstimator::new()).resolve(&ds, &Euclidean);
        assert_eq!(t, 0.5);
    }
}
