//! Bichromatic reverse-kNN queries with RDT's machinery.
//!
//! In the bichromatic setting (§1 of the paper, \[29, 48, 50\]) the data are
//! split into two types — think *services* and *clients*. A query at a
//! service location `q` asks for all clients `c` that have `q` among their
//! `k` nearest **services**: `d(c, q) ≤ d_k^S(c)` where `d_k^S(c)` is the
//! distance from `c` to its k-th nearest service.
//!
//! The paper's monochromatic machinery transfers directly:
//!
//! * **witnesses** of a client `c` are *services* `s` with
//!   `d(c, s) < d(c, q)`; `k` witnesses reject `c` (Assertion 1 verbatim);
//! * **lazy accept**: once the service search has expanded past
//!   `2·d(q, c)`, every potential witness of `c` has been discovered
//!   (triangle inequality, exactly as Assertion 2), so `W(c) < k` certifies
//!   `c`;
//! * the **dimensional test** runs on the expanding *service* stream, whose
//!   growth rate is what bounds undiscovered witnesses.
//!
//! Both point sets are streamed outward from `q` in lockstep: the service
//! frontier is kept at twice the client frontier so accept/reject censuses
//! are complete when consulted.

use crate::answer::{RdtQueryStats, RknnAnswer, Termination};
use crate::params::RdtParams;
use rknn_core::{Metric, Neighbor, PointId, SearchStats};
use rknn_index::KnnIndex;

/// Bichromatic RDT query handle.
///
/// The two index substrates may be of different types; they must share the
/// metric and dimensionality.
#[derive(Debug, Clone, Copy)]
pub struct BichromaticRdt {
    params: RdtParams,
}

struct ClientCand {
    id: PointId,
    dist: f64,
    witnesses: usize,
    accepted: bool,
    rejected: bool,
}

impl BichromaticRdt {
    /// Creates a handle.
    pub fn new(params: RdtParams) -> Self {
        BichromaticRdt { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> RdtParams {
        self.params
    }

    /// All clients having `q` among their `k` nearest services.
    ///
    /// `q` is given by coordinates; pass `exclude_service` when `q` is a
    /// member of the service set.
    pub fn query<M, IS, IC>(
        &self,
        services: &IS,
        clients: &IC,
        q: &[f64],
        exclude_service: Option<PointId>,
    ) -> RknnAnswer
    where
        M: Metric,
        IS: KnnIndex<M> + ?Sized,
        IC: KnnIndex<M> + ?Sized,
    {
        let k = self.params.k;
        let t = self.params.t;
        let metric = services.metric();
        let n_services = services
            .num_points()
            .saturating_sub(usize::from(exclude_service.is_some()));
        let service_cap = self.params.rank_cap(n_services);

        let mut service_cursor = services.cursor(q, exclude_service);
        let mut client_cursor = clients.cursor(q, None);

        // Discovered services (distances from q), in retrieval order.
        let mut found_services: Vec<Neighbor> = Vec::new();
        let mut candidates: Vec<ClientCand> = Vec::new();
        let mut omega = f64::INFINITY;
        let mut witness_dist_comps = 0u64;
        let mut lazy_accepts = 0usize;
        // `exhausted`: the service cursor ran dry — witness censuses are
        // complete for every client. `capped`: the rank cap stopped the
        // stream — censuses are INcomplete, so lazy accepts must not rely
        // on it (unresolved candidates go to verification instead).
        let mut svc_exhausted = false;
        let mut svc_capped = false;
        let mut termination = Termination::Exhausted;
        let inv_t = 1.0 / t;
        let kf = k as f64;

        // Advances the service frontier to `radius`, updating witnesses of
        // all current candidates and the dimensional-test bound.
        let mut advance_services = |target: f64,
                                    found: &mut Vec<Neighbor>,
                                    cands: &mut Vec<ClientCand>,
                                    omega: &mut f64,
                                    witness_dist_comps: &mut u64,
                                    lazy_accepts: &mut usize,
                                    exhausted: &mut bool,
                                    capped: &mut bool| {
            while !(*exhausted || *capped) && found.last().map(|s| s.dist < target).unwrap_or(true)
            {
                let Some(srv) = service_cursor.next() else {
                    *exhausted = true;
                    break;
                };
                let s_rank = found.len() + 1;
                // Witness updates: the new service may witness any client.
                let srv_point = services.point(srv.id);
                for c in cands.iter_mut() {
                    if c.rejected || c.accepted {
                        continue;
                    }
                    *witness_dist_comps += 1;
                    if metric.dist(srv_point, clients.point(c.id)) < c.dist {
                        c.witnesses += 1;
                        if c.witnesses >= k {
                            c.rejected = true;
                        }
                    }
                }
                // Dimensional test on the service stream.
                if s_rank > k && srv.dist > 0.0 {
                    let denom = (s_rank as f64 / kf).powf(inv_t) - 1.0;
                    if denom > 0.0 {
                        let bound = srv.dist / denom;
                        if bound < *omega {
                            *omega = bound;
                        }
                    }
                }
                found.push(srv);
                if found.len() >= service_cap {
                    *capped = true;
                }
            }
            // Lazy accepts for clients whose census is complete: the
            // frontier passed 2·d(q,c) or every service has been seen.
            let frontier = found.last().map(|s| s.dist).unwrap_or(0.0);
            for c in cands.iter_mut() {
                if !c.accepted
                    && !c.rejected
                    && c.witnesses < k
                    && (frontier >= 2.0 * c.dist || *exhausted)
                {
                    c.accepted = true;
                    *lazy_accepts += 1;
                }
            }
        };

        // Expand the client stream; terminate via the service-side ω.
        #[allow(clippy::while_let_loop)]
        loop {
            let Some(client) = client_cursor.next() else {
                break;
            };
            if client.dist > omega {
                termination = Termination::Omega;
                break;
            }
            // Ensure the service frontier is at 2·d(q, c) before counting
            // this client's witnesses.
            advance_services(
                2.0 * client.dist,
                &mut found_services,
                &mut candidates,
                &mut omega,
                &mut witness_dist_comps,
                &mut lazy_accepts,
                &mut svc_exhausted,
                &mut svc_capped,
            );
            // Count witnesses among already-discovered services. A witness
            // s has d(c,s) < d(c,q), hence d(q,s) < 2·d(q,c): services at or
            // beyond that radius cannot witness this client.
            let cpoint = clients.point(client.id);
            let mut w = 0usize;
            for s in &found_services {
                if s.dist >= 2.0 * client.dist {
                    break;
                }
                witness_dist_comps += 1;
                if metric.dist(cpoint, services.point(s.id)) < client.dist {
                    w += 1;
                }
            }
            let rejected = w >= k;
            let frontier = found_services.last().map(|s| s.dist).unwrap_or(0.0);
            let accepted = !rejected && w < k && (frontier >= 2.0 * client.dist || svc_exhausted);
            if accepted {
                lazy_accepts += 1;
            }
            candidates.push(ClientCand {
                id: client.id,
                dist: client.dist,
                witnesses: w,
                accepted,
                rejected,
            });
            // Re-check the bound after the service advance tightened ω.
            if client.dist > omega {
                termination = Termination::Omega;
                break;
            }
        }

        let mut search = client_cursor.stats();
        search.absorb(&service_cursor.stats());
        drop(client_cursor);
        drop(service_cursor);

        // Refinement: verify unresolved candidates against the service set.
        let mut result = Vec::new();
        let mut lazy_rejects = 0usize;
        let mut verified = 0usize;
        let mut verified_accepted = 0usize;
        let mut verify_stats = SearchStats::new();
        for c in &candidates {
            if c.accepted {
                result.push(Neighbor::new(c.id, c.dist));
                continue;
            }
            if c.rejected {
                lazy_rejects += 1;
                continue;
            }
            verified += 1;
            let nn = services.knn(clients.point(c.id), k, None, &mut verify_stats);
            let dk = if nn.len() < k {
                f64::INFINITY
            } else {
                nn[k - 1].dist
            };
            if dk >= c.dist {
                verified_accepted += 1;
                result.push(Neighbor::new(c.id, c.dist));
            }
        }
        search.absorb(&verify_stats);
        rknn_core::neighbor::sort_neighbors(&mut result);

        RknnAnswer {
            result,
            stats: RdtQueryStats {
                retrieved: candidates.len(),
                filter_set_size: candidates.len(),
                excluded: 0,
                lazy_accepts,
                lazy_rejects,
                verified,
                verified_accepted,
                // Every processed bichromatic pair evaluates its distance
                // (no decided-pair shortcut here), so the two counters
                // coincide.
                witness_pairs: witness_dist_comps,
                witness_dist_comps,
                omega,
                termination,
                search,
            },
        }
    }
}

/// Exact bichromatic reverse-kNN by brute force (ground truth for tests and
/// recall computation).
pub fn bichromatic_brute<M: Metric>(
    services: &rknn_core::Dataset,
    clients: &rknn_core::Dataset,
    metric: &M,
    q: &[f64],
    k: usize,
    exclude_service: Option<PointId>,
) -> Vec<Neighbor> {
    let mut out = Vec::new();
    for (c, cp) in clients.iter() {
        let dcq = metric.dist(cp, q);
        let mut closer = 0usize;
        for (s, sp) in services.iter() {
            if Some(s) == exclude_service {
                continue;
            }
            if metric.dist(cp, sp) < dcq {
                closer += 1;
                if closer >= k {
                    break;
                }
            }
        }
        if closer < k {
            out.push(Neighbor::new(c, dcq));
        }
    }
    rknn_core::neighbor::sort_neighbors(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rknn_core::{Dataset, Euclidean};
    use rknn_index::LinearScan;
    use std::sync::Arc;

    fn uniform(n: usize, dim: usize, seed: u64) -> Arc<Dataset> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.random::<f64>() * 10.0).collect())
            .collect();
        Dataset::from_rows(&rows).unwrap().into_shared()
    }

    #[test]
    fn exact_at_high_t() {
        let services = uniform(150, 2, 80);
        let clients = uniform(220, 2, 81);
        let is = LinearScan::build(services.clone(), Euclidean);
        let ic = LinearScan::build(clients.clone(), Euclidean);
        let handle = BichromaticRdt::new(RdtParams::new(3, 40.0));
        for qi in [0usize, 75, 149] {
            let q = services.point(qi).to_vec();
            let got = handle.query(&is, &ic, &q, Some(qi)).ids();
            let want: Vec<_> = bichromatic_brute(&services, &clients, &Euclidean, &q, 3, Some(qi))
                .iter()
                .map(|n| n.id)
                .collect();
            assert_eq!(got, want, "qi={qi}");
        }
    }

    #[test]
    fn no_false_positives_at_any_t() {
        let services = uniform(120, 2, 82);
        let clients = uniform(180, 2, 83);
        let is = LinearScan::build(services.clone(), Euclidean);
        let ic = LinearScan::build(clients.clone(), Euclidean);
        for t in [1.0, 2.0, 5.0] {
            let handle = BichromaticRdt::new(RdtParams::new(4, t));
            let q = services.point(11).to_vec();
            let got = handle.query(&is, &ic, &q, Some(11));
            let want: std::collections::HashSet<_> =
                bichromatic_brute(&services, &clients, &Euclidean, &q, 4, Some(11))
                    .iter()
                    .map(|n| n.id)
                    .collect();
            for n in &got.result {
                assert!(want.contains(&n.id), "false positive at t={t}");
            }
        }
    }

    #[test]
    fn recall_improves_with_t() {
        let services = uniform(400, 3, 84);
        let clients = uniform(500, 3, 85);
        let is = LinearScan::build(services.clone(), Euclidean);
        let ic = LinearScan::build(clients.clone(), Euclidean);
        let q = services.point(5).to_vec();
        let want: std::collections::HashSet<_> =
            bichromatic_brute(&services, &clients, &Euclidean, &q, 5, Some(5))
                .iter()
                .map(|n| n.id)
                .collect();
        let mut prev = 0.0;
        for t in [1.0, 3.0, 9.0, 30.0] {
            let handle = BichromaticRdt::new(RdtParams::new(5, t));
            let got = handle.query(&is, &ic, &q, Some(5));
            let recall = if want.is_empty() {
                1.0
            } else {
                got.result.iter().filter(|n| want.contains(&n.id)).count() as f64
                    / want.len() as f64
            };
            assert!(recall >= prev - 0.05, "recall regressed at t={t}");
            prev = prev.max(recall);
        }
        assert!(prev >= 0.99, "high t reaches full recall, got {prev}");
    }

    #[test]
    fn brute_force_handles_empty_sides() {
        let services = Dataset::from_rows(&[vec![0.0, 0.0]]).unwrap();
        let clients = Dataset::from_flat(2, vec![]).unwrap();
        let got = bichromatic_brute(&services, &clients, &Euclidean, &[0.0, 0.0], 1, None);
        assert!(got.is_empty());
    }
}
