//! The algorithm-generic RkNN abstraction: one trait, one batch driver,
//! every method.
//!
//! The paper's experimental story (§7) is a head-to-head comparison of
//! RDT/RDT+ against five baselines, all answering the same queries against
//! the same forward index. This module is the execution contract that makes
//! such comparisons fair *by construction*:
//!
//! * [`RknnAlgorithm`] — the lifecycle every method implements: one-off
//!   [`prepare`](RknnAlgorithm::prepare) precomputation (kNN passes,
//!   auxiliary trees — reported uniformly via
//!   [`precompute_time`](RknnAlgorithm::precompute_time) and
//!   [`precompute_stats`](RknnAlgorithm::precompute_stats)), a per-worker
//!   [`Worker`](RknnAlgorithm::Worker) state (cursor scratch and any other
//!   per-thread buffers, allocated once per worker and reused across
//!   queries), and a per-query [`query`](RknnAlgorithm::query).
//! * [`run_algorithm_batch`] — the crossbeam-sharded batch driver all
//!   methods run through: contiguous query chunks across scoped workers,
//!   one worker state per thread, answers written into disjoint output
//!   slots, statistics merged in query order so the outcome is
//!   deterministic and independent of worker count and scheduling.
//!
//! RDT itself is ported onto the trait as [`RdtAlgorithm`]; the historical
//! entry points [`crate::batch::run_batch`] / [`crate::batch::run_all_points`]
//! are thin wrappers over this driver. The five baselines implement the
//! trait in `rknn_baselines::algorithm`.

use crate::answer::RknnAnswer;
use crate::engine::{run_query_full, run_query_interruptible, DkCache, RdtVariant, TSchedule};
use crate::params::RdtParams;
use rknn_core::{
    CancelToken, Cancelled, CoreError, Metric, Neighbor, PointId, QueryScratch, SearchStats,
};
use rknn_index::KnnIndex;
use std::time::{Duration, Instant};

/// The per-query outcome any RkNN algorithm can report.
///
/// The generic driver and the evaluation harness only need two things from
/// an answer: the reported reverse neighbors and the work spent producing
/// them. Methods with richer accounting (RDT's [`RknnAnswer`]) expose it
/// through their concrete answer type; the uniform view is what cross-method
/// comparisons are computed on.
pub trait AlgorithmAnswer {
    /// The reported reverse k-nearest neighbors, ascending by distance.
    fn neighbors(&self) -> &[Neighbor];

    /// Total work spent answering the query. `dist_computations` counts
    /// **every** metric evaluation the method performed — index work,
    /// witness maintenance, pairwise filtering — so the field is the
    /// paper's dominant cost measure on identical footing for all methods.
    fn work(&self) -> SearchStats;
}

/// A plain `(result, work)` answer for methods without richer accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BasicAnswer {
    /// Reported reverse neighbors, ascending by distance.
    pub result: Vec<Neighbor>,
    /// Work spent on this query.
    pub stats: SearchStats,
}

impl BasicAnswer {
    /// Ids of the reported reverse neighbors.
    pub fn ids(&self) -> Vec<PointId> {
        self.result.iter().map(|n| n.id).collect()
    }
}

impl AlgorithmAnswer for BasicAnswer {
    fn neighbors(&self) -> &[Neighbor] {
        &self.result
    }

    fn work(&self) -> SearchStats {
        self.stats
    }
}

impl AlgorithmAnswer for RknnAnswer {
    fn neighbors(&self) -> &[Neighbor] {
        &self.result
    }

    /// RDT's index work plus its witness-maintenance distance evaluations,
    /// folded into one counter ([`crate::answer::RdtQueryStats::total_dist_comps`])
    /// so RDT's filter-phase metric evaluations are charged on the same
    /// scale as the baselines' pairwise filtering.
    fn work(&self) -> SearchStats {
        SearchStats {
            dist_computations: self.stats.total_dist_comps(),
            ..self.stats.search
        }
    }
}

/// A change applied to the forward index that a prepared algorithm may
/// need to react to before answering further queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexUpdate {
    /// Point `id` was inserted and is live in the index.
    Inserted(PointId),
    /// Point `id` was tombstoned (its coordinates stay addressable through
    /// [`KnnIndex::point`]).
    Removed(PointId),
}

/// How much maintained state a method must touch per index update — the
/// dynamic-workload analogue of the precompute-cost column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceCost {
    /// No maintained state: every query reads the live index directly, so
    /// updates cost nothing beyond the index's own repair.
    None,
    /// Maintained state is repaired locally per update (RDT's `d_k` cache:
    /// only thresholds whose ball contains the updated point are evicted).
    Localized,
    /// Precomputation snapshots the point set and must be rebuilt
    /// (re-[`prepare`](RknnAlgorithm::prepare), typically against a fresh
    /// dataset snapshot) to stay correct under churn.
    Rebuild,
}

/// A reverse-kNN method executable by the algorithm-generic batch driver.
///
/// The lifecycle separates the three cost classes the paper's Figures 3–6
/// and 9 weigh against each other:
///
/// 1. **Precomputation** — [`prepare`](Self::prepare) runs exactly once
///    before any query, against the forward index the queries will use.
///    Methods that need setup (MRkNNCoP's bound-line fitting, the
///    RdNN-Tree's kNN pass, TPL's R-tree) do it here and report its cost
///    through [`precompute_time`](Self::precompute_time) /
///    [`precompute_stats`](Self::precompute_stats); free methods keep the
///    no-op defaults.
/// 2. **Per-worker state** — [`make_worker`](Self::make_worker) builds the
///    buffers one executor thread reuses across all its queries (cursor
///    scratch, candidate vectors). Workers are created per thread by the
///    driver, so implementations need no internal synchronization.
/// 3. **Per-query work** — [`query`](Self::query) answers the reverse-kNN
///    query located at dataset point `q`, self-excluding, matching the
///    paper's experimental protocol. It takes `&self`: all mutable state
///    lives in the worker.
///
/// Queries must be deterministic: the same `(index, q)` must produce the
/// same answer regardless of worker identity or execution order, so the
/// batch driver's outcome is reproducible at any thread count. (Shared
/// caches that only *reduce work* without changing answers — RDT's
/// [`DkCache`] — are the documented exception: results stay deterministic,
/// per-query work counters may vary with scheduling.)
///
/// # Unwind safety (the serving contract)
///
/// The serving engine runs each query under
/// [`std::panic::catch_unwind`] so one panicking query fails exactly its
/// own submitter instead of the whole worker. Implementations must
/// therefore tolerate a query being abandoned at *any* point:
///
/// * A [`Worker`](Self::Worker) whose query panicked is **discarded** —
///   the driver never reuses it and builds a replacement through
///   [`make_worker`](Self::make_worker) — so worker state may be left
///   arbitrarily inconsistent by an unwind.
/// * Shared state reachable through `&self` (caches like [`DkCache`])
///   must stay valid mid-unwind. `DkCache` satisfies this by
///   construction: slots are single atomic stores of complete values, so
///   an abandoned query has either published a correct threshold or
///   nothing.
///
/// No implementation in this workspace holds locks or performs multi-step
/// shared mutations during [`query`](Self::query), so all are unwind-safe
/// under this contract.
pub trait RknnAlgorithm<M: Metric, I: KnnIndex<M> + ?Sized>: Sync {
    /// Per-worker mutable state: scratch buffers reused across the queries
    /// one thread executes.
    type Worker;

    /// Per-query answer type.
    type Answer: AlgorithmAnswer + Send;

    /// Method label for reports and experiment rows.
    fn name(&self) -> String;

    /// One-off precomputation against the forward index. Default: no-op.
    fn prepare(&mut self, index: &I) {
        let _ = index;
    }

    /// Wall-clock time spent in [`prepare`](Self::prepare) (zero before it
    /// ran, and for methods without precomputation).
    fn precompute_time(&self) -> Duration {
        Duration::ZERO
    }

    /// Work spent in [`prepare`](Self::prepare).
    fn precompute_stats(&self) -> SearchStats {
        SearchStats::new()
    }

    /// Fresh per-worker state for executing queries against `index`.
    fn make_worker(&self, index: &I) -> Self::Worker;

    /// Answers the reverse-kNN query located at dataset point `q`
    /// (self-excluding).
    fn query(&self, index: &I, q: PointId, worker: &mut Self::Worker) -> Self::Answer;

    /// [`query`](Self::query) with a cooperative [`CancelToken`].
    ///
    /// The default checks the token once up front and then runs the query
    /// to completion — correct for every method, coarse for long queries.
    /// Methods with interruptible engines (RDT's tile-block checkpoints)
    /// override this to honor the token at block granularity, so a
    /// past-deadline or explicitly cancelled query releases its worker
    /// promptly. A query whose token never trips must be byte-identical
    /// to [`query`](Self::query).
    fn query_cancellable(
        &self,
        index: &I,
        q: PointId,
        worker: &mut Self::Worker,
        cancel: &CancelToken,
    ) -> Result<Self::Answer, Cancelled> {
        if cancel.is_cancelled() {
            return Err(Cancelled);
        }
        Ok(self.query(index, q, worker))
    }

    /// Answers a reverse-kNN query located at arbitrary coordinates (not a
    /// dataset point, nothing excluded), honoring `cancel` as in
    /// [`query_cancellable`](Self::query_cancellable).
    ///
    /// Returns `None` when the method cannot answer external-coordinate
    /// queries (the default); drivers surface that as a typed
    /// "unsupported" error instead of a panic. `coords` has already passed
    /// [`validate_query`](Self::validate_query) when called through the
    /// serving engine.
    fn query_at(
        &self,
        index: &I,
        coords: &[f64],
        worker: &mut Self::Worker,
        cancel: &CancelToken,
    ) -> Option<Result<Self::Answer, Cancelled>> {
        let _ = (index, coords, worker, cancel);
        None
    }

    /// Boundary validation for an external-coordinate query: the hook
    /// serving drivers call **at submit time**, before malformed input can
    /// reach a kernel or a worker thread. The default enforces what every
    /// metric kernel assumes — the index's dimensionality and finite
    /// coordinates — and methods with stricter preconditions can extend it.
    fn validate_query(&self, index: &I, coords: &[f64]) -> Result<(), CoreError> {
        if coords.len() != index.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: index.dim(),
                got: coords.len(),
            });
        }
        if let Some(coordinate) = coords.iter().position(|c| !c.is_finite()) {
            return Err(CoreError::NonFinite {
                point: 0,
                coordinate,
            });
        }
        Ok(())
    }

    /// Repairs maintained state after an index update, called once per
    /// insert/delete with the index already mutated (the removed point, if
    /// any, already tombstoned). Methods whose maintained state is
    /// [`MaintenanceCost::Rebuild`] keep the no-op default and document
    /// that callers must re-[`prepare`](Self::prepare) instead; the work
    /// spent here is reported through
    /// [`maintenance_time`](Self::maintenance_time) /
    /// [`maintenance_stats`](Self::maintenance_stats), uniformly with
    /// precomputation.
    fn apply_update(&mut self, index: &I, update: IndexUpdate) {
        let _ = (index, update);
    }

    /// How this method's maintained state reacts to index updates.
    fn maintenance_cost(&self) -> MaintenanceCost {
        MaintenanceCost::None
    }

    /// Cumulative wall-clock time spent in
    /// [`apply_update`](Self::apply_update) since the last
    /// [`prepare`](Self::prepare).
    fn maintenance_time(&self) -> Duration {
        Duration::ZERO
    }

    /// Cumulative work spent in [`apply_update`](Self::apply_update) since
    /// the last [`prepare`](Self::prepare).
    fn maintenance_stats(&self) -> SearchStats {
        SearchStats::new()
    }
}

/// Resolves a worker-count request into the count actually used when the
/// caller passed no explicit number: a non-zero request wins as-is; `0`
/// defers to the `RKNN_THREADS` environment override (any positive
/// integer), and only then to [`std::thread::available_parallelism`].
///
/// Every driver in the workspace (the batch driver here, the serving
/// engine, the CLI) routes its "use the default" path through this one
/// function, so `RKNN_THREADS=4` reproduces a four-worker run on any host
/// regardless of its core count.
pub fn requested_threads(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("RKNN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a requested worker count (`0` = `RKNN_THREADS` or one per CPU)
/// against the number of jobs.
pub(crate) fn resolve_threads(requested: usize, jobs: usize) -> usize {
    requested_threads(requested).clamp(1, jobs.max(1))
}

/// Deterministic query-order aggregate of a batch run, uniform across
/// methods.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AlgorithmBatchStats {
    /// Number of queries executed.
    pub queries: usize,
    /// Total reported reverse neighbors.
    pub result_members: usize,
    /// Total work, summed in query order ([`AlgorithmAnswer::work`]).
    pub search: SearchStats,
}

/// The outcome of an algorithm-generic batch run.
#[derive(Debug, Clone)]
pub struct AlgorithmOutcome<T> {
    /// One answer per query, in the order the queries were supplied.
    pub answers: Vec<T>,
    /// Query-order aggregate of the per-query work.
    pub stats: AlgorithmBatchStats,
    /// Wall-clock time of the whole batch (excluding `prepare`).
    pub elapsed: Duration,
    /// Worker threads actually used.
    pub threads: usize,
}

/// Executes one query per supplied dataset point through any
/// [`RknnAlgorithm`], sharded across scoped worker threads with one
/// [`RknnAlgorithm::Worker`] per thread.
///
/// `threads == 0` uses one worker per available CPU. Answers land in query
/// order and statistics are merged in query order, so the outcome is
/// byte-identical to a sequential loop over the same queries (for methods
/// whose per-query work is scheduling-independent; see the trait docs).
///
/// The algorithm must already be [`prepared`](RknnAlgorithm::prepare);
/// the driver never calls `prepare` (it takes `&A`), so precomputation is
/// paid — and measured — exactly once even across repeated batches.
pub fn run_algorithm_batch<M, I, A>(
    algo: &A,
    index: &I,
    queries: &[PointId],
    threads: usize,
) -> AlgorithmOutcome<A::Answer>
where
    M: Metric,
    I: KnnIndex<M> + Sync + ?Sized,
    A: RknnAlgorithm<M, I> + ?Sized,
{
    let start = Instant::now();
    let threads = resolve_threads(threads, queries.len());
    let mut answers: Vec<Option<A::Answer>> = Vec::new();
    answers.resize_with(queries.len(), || None);

    let run_chunk = |ids: &[PointId], out: &mut [Option<A::Answer>]| {
        let mut worker = algo.make_worker(index);
        for (&q, slot) in ids.iter().zip(out.iter_mut()) {
            *slot = Some(algo.query(index, q, &mut worker));
        }
    };

    if threads <= 1 {
        run_chunk(queries, &mut answers);
    } else {
        let chunk = queries.len().div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for (ids, out) in queries.chunks(chunk).zip(answers.chunks_mut(chunk)) {
                scope.spawn(move |_| run_chunk(ids, out));
            }
        })
        .expect("batch workers do not panic");
    }

    let answers: Vec<A::Answer> = answers
        .into_iter()
        .map(|a| a.expect("every query slot was filled"))
        .collect();
    let mut stats = AlgorithmBatchStats::default();
    for ans in &answers {
        stats.queries += 1;
        stats.result_members += ans.neighbors().len();
        stats.search.absorb(&ans.work());
    }
    AlgorithmOutcome {
        answers,
        stats,
        elapsed: start.elapsed(),
        threads,
    }
}

/// Runs [`run_algorithm_batch`] over **every** point of the index — the
/// paper's all-points experimental workload.
pub fn run_algorithm_all_points<M, I, A>(
    algo: &A,
    index: &I,
    threads: usize,
) -> AlgorithmOutcome<A::Answer>
where
    M: Metric,
    I: KnnIndex<M> + Sync + ?Sized,
    A: RknnAlgorithm<M, I> + ?Sized,
{
    let queries: Vec<PointId> = (0..index.num_points()).collect();
    run_algorithm_batch(algo, index, &queries, threads)
}

/// RDT, RDT+, the no-witness ablation, and the adaptive-`t` variant as one
/// [`RknnAlgorithm`].
///
/// The adapter owns the batch-level configuration the historical
/// [`crate::batch::BatchConfig`] carried: engine variant, scale-parameter
/// schedule, and the shared [`DkCache`] of verification thresholds
/// (created in [`prepare`](RknnAlgorithm::prepare) when
/// [`with_dk_reuse`](Self::with_dk_reuse) is on and shared by every worker
/// of a batch).
#[derive(Debug)]
pub struct RdtAlgorithm {
    params: RdtParams,
    variant: RdtVariant,
    schedule: TSchedule,
    reuse_dk: bool,
    prewarm: usize,
    cache: Option<DkCache>,
    prepare_time: Duration,
    prepare_stats: SearchStats,
    maint_time: Duration,
    maint_stats: SearchStats,
}

impl RdtAlgorithm {
    /// An unprepared copy of this configuration: same parameters, variant,
    /// schedule and `d_k`-reuse setting, but no cache and zeroed time
    /// accounting. This is the "rebuild-from-scratch" counterpart of a
    /// long-lived maintained instance — prepare it against the current
    /// index and compare.
    pub fn fresh(&self) -> RdtAlgorithm {
        RdtAlgorithm {
            params: self.params,
            variant: self.variant,
            schedule: self.schedule,
            reuse_dk: self.reuse_dk,
            prewarm: self.prewarm,
            cache: None,
            prepare_time: Duration::ZERO,
            prepare_stats: SearchStats::new(),
            maint_time: Duration::ZERO,
            maint_stats: SearchStats::new(),
        }
    }

    /// An **already-prepared** successor carrying this instance's warm
    /// [`DkCache`] ([`DkCache::warm_copy`]): same configuration, thresholds
    /// copied bit-for-bit, counters and time accounting zeroed. This is the
    /// snapshot-advance path of the serving engine — build the next index
    /// off to the side, carry the cache over, then evict locally through
    /// [`RknnAlgorithm::apply_update`] for each churn op. Do **not** call
    /// [`RknnAlgorithm::prepare`] on the result: that would discard the
    /// carried cache and recreate it cold.
    pub fn warmed(&self) -> RdtAlgorithm {
        RdtAlgorithm {
            params: self.params,
            variant: self.variant,
            schedule: self.schedule,
            reuse_dk: self.reuse_dk,
            prewarm: self.prewarm,
            cache: self.cache.as_ref().map(DkCache::warm_copy),
            prepare_time: Duration::ZERO,
            prepare_stats: SearchStats::new(),
            maint_time: Duration::ZERO,
            maint_stats: SearchStats::new(),
        }
    }

    /// Plain RDT at the given parameters (fixed schedule, `d_k` reuse on).
    pub fn new(params: RdtParams) -> Self {
        RdtAlgorithm {
            params,
            variant: RdtVariant::Plain,
            schedule: TSchedule::Fixed,
            reuse_dk: true,
            prewarm: 0,
            cache: None,
            prepare_time: Duration::ZERO,
            prepare_stats: SearchStats::new(),
            maint_time: Duration::ZERO,
            maint_stats: SearchStats::new(),
        }
    }

    /// RDT+ (the §4.3 candidate-set reduction) at the given parameters.
    pub fn plus(params: RdtParams) -> Self {
        RdtAlgorithm::new(params).with_variant(RdtVariant::Plus)
    }

    /// The adaptive-`t` variant (§9): RDT+ with a per-query online Hill
    /// estimate scaled by `safety`, floored at `t_floor`.
    pub fn adaptive(k: usize, safety: f64, t_floor: f64) -> Self {
        RdtAlgorithm::plus(RdtParams::new(k, t_floor)).with_schedule(TSchedule::Adaptive { safety })
    }

    /// Sets the engine variant.
    pub fn with_variant(mut self, variant: RdtVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the scale-parameter schedule.
    pub fn with_schedule(mut self, schedule: TSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Enables or disables the shared verification-threshold cache. With
    /// reuse on, answers are unchanged but per-query work counters of
    /// cache-hitting queries shrink, scheduling-dependently (see
    /// [`DkCache`]).
    pub fn with_dk_reuse(mut self, reuse: bool) -> Self {
        self.reuse_dk = reuse;
        self
    }

    /// Prewarms up to `sample` verification thresholds during
    /// [`prepare`](RknnAlgorithm::prepare): a deterministic stride sample
    /// of point ids gets its `d_k` computed eagerly, so a fresh snapshot's
    /// first queries don't all pay the cold-cache `d_k` miss storm. `0`
    /// (the default) disables prewarming. The work is charged to
    /// [`precompute_stats`](RknnAlgorithm::precompute_stats) /
    /// [`precompute_time`](RknnAlgorithm::precompute_time), keeping the
    /// precompute-vs-query cost split honest. No-op without `d_k` reuse.
    pub fn with_prewarm(mut self, sample: usize) -> Self {
        self.prewarm = sample;
        self
    }

    /// The configured parameters.
    pub fn params(&self) -> RdtParams {
        self.params
    }

    /// The configured variant.
    pub fn variant(&self) -> RdtVariant {
        self.variant
    }

    /// The shared verification-threshold cache, if prepared with `d_k`
    /// reuse on (read access for cache-occupancy reporting).
    pub fn dk_cache(&self) -> Option<&DkCache> {
        self.cache.as_ref()
    }
}

impl<M, I> RknnAlgorithm<M, I> for RdtAlgorithm
where
    M: Metric,
    I: KnnIndex<M> + ?Sized,
{
    type Worker = QueryScratch;
    type Answer = RknnAnswer;

    fn name(&self) -> String {
        let base = match self.variant {
            RdtVariant::Plain => "RDT",
            RdtVariant::Plus => "RDT+",
            RdtVariant::NoWitness => "RDT(no-witness)",
        };
        match self.schedule {
            TSchedule::Fixed => base.to_string(),
            TSchedule::Adaptive { .. } => format!("{base}(adaptive)"),
        }
    }

    fn prepare(&mut self, index: &I) {
        let start = Instant::now();
        let n = index.num_points();
        self.cache = self.reuse_dk.then(|| DkCache::new(self.params.k, n));
        self.prepare_stats = SearchStats::new();
        self.maint_time = Duration::ZERO;
        self.maint_stats = SearchStats::new();
        if let Some(cache) = self.cache.as_ref() {
            let sample = self.prewarm.min(n);
            if sample > 0 {
                // Deterministic stride sample: `sample` evenly spaced ids,
                // so the warm set covers the id range independently of any
                // RNG state and identically on every host.
                let step = n.checked_div(sample).unwrap_or(1).max(1);
                let mut scratch = rknn_core::CursorScratch::new();
                for i in 0..sample {
                    cache.dk_or_compute(index, i * step, &mut scratch, &mut self.prepare_stats);
                }
            }
        }
        self.prepare_time = start.elapsed();
    }

    fn precompute_time(&self) -> Duration {
        self.prepare_time
    }

    fn precompute_stats(&self) -> SearchStats {
        self.prepare_stats
    }

    fn apply_update(&mut self, index: &I, update: IndexUpdate) {
        let Some(cache) = self.cache.as_mut() else {
            return;
        };
        let start = Instant::now();
        let mut stats = SearchStats::new();
        let p = match update {
            IndexUpdate::Inserted(id) => {
                cache.grow(id + 1);
                id
            }
            IndexUpdate::Removed(id) => id,
        };
        cache.invalidate_near(index, p, &mut stats);
        self.maint_stats.absorb(&stats);
        self.maint_time += start.elapsed();
    }

    fn maintenance_cost(&self) -> MaintenanceCost {
        if self.reuse_dk {
            MaintenanceCost::Localized
        } else {
            MaintenanceCost::None
        }
    }

    fn maintenance_time(&self) -> Duration {
        self.maint_time
    }

    fn maintenance_stats(&self) -> SearchStats {
        self.maint_stats
    }

    fn make_worker(&self, index: &I) -> QueryScratch {
        QueryScratch::new(index.dim().max(1))
    }

    fn query(&self, index: &I, q: PointId, worker: &mut QueryScratch) -> RknnAnswer {
        run_query_full(
            index,
            index.point(q),
            Some(q),
            self.params,
            self.variant,
            self.schedule,
            worker,
            self.cache.as_ref(),
        )
    }

    fn query_cancellable(
        &self,
        index: &I,
        q: PointId,
        worker: &mut QueryScratch,
        cancel: &CancelToken,
    ) -> Result<RknnAnswer, Cancelled> {
        run_query_interruptible(
            index,
            index.point(q),
            Some(q),
            self.params,
            self.variant,
            self.schedule,
            worker,
            self.cache.as_ref(),
            cancel,
        )
    }

    fn query_at(
        &self,
        index: &I,
        coords: &[f64],
        worker: &mut QueryScratch,
        cancel: &CancelToken,
    ) -> Option<Result<RknnAnswer, Cancelled>> {
        Some(run_query_interruptible(
            index,
            coords,
            None,
            self.params,
            self.variant,
            self.schedule,
            worker,
            self.cache.as_ref(),
            cancel,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_query_scheduled;
    use rknn_core::Euclidean;
    use rknn_index::LinearScan;

    fn index(n: usize, dim: usize, seed: u64) -> LinearScan<Euclidean> {
        let ds = rknn_data::uniform_cube(n, dim, seed).into_shared();
        LinearScan::build(ds, Euclidean)
    }

    #[test]
    fn generic_driver_matches_the_engine_exactly() {
        let idx = index(250, 3, 400);
        let params = RdtParams::new(4, 4.0);
        let mut algo = RdtAlgorithm::new(params).with_dk_reuse(false);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut algo, &idx);
        let out = run_algorithm_all_points(&algo, &idx, 3);
        assert_eq!(out.answers.len(), 250);
        assert_eq!(out.stats.queries, 250);
        for (q, ans) in out.answers.iter().enumerate() {
            let want = run_query_scheduled(
                &idx,
                idx.point(q),
                Some(q),
                params,
                RdtVariant::Plain,
                TSchedule::Fixed,
            );
            assert_eq!(ans.ids(), want.ids(), "q={q}");
            assert_eq!(ans.stats, want.stats, "q={q}");
        }
    }

    #[test]
    fn aggregate_work_folds_witness_cost_into_dist_computations() {
        let idx = index(180, 2, 401);
        let mut algo = RdtAlgorithm::plus(RdtParams::new(3, 5.0)).with_dk_reuse(false);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut algo, &idx);
        let out = run_algorithm_all_points(&algo, &idx, 2);
        let want: u64 = out.answers.iter().map(|a| a.stats.total_dist_comps()).sum();
        assert_eq!(out.stats.search.dist_computations, want);
        let members: usize = out.answers.iter().map(|a| a.result.len()).sum();
        assert_eq!(out.stats.result_members, members);
    }

    #[test]
    fn thread_count_does_not_change_the_outcome() {
        let idx = index(200, 2, 402);
        let mut algo = RdtAlgorithm::new(RdtParams::new(3, 3.0)).with_dk_reuse(false);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut algo, &idx);
        let base = run_algorithm_all_points(&algo, &idx, 1);
        for threads in [2usize, 5] {
            let out = run_algorithm_all_points(&algo, &idx, threads);
            assert_eq!(out.stats, base.stats, "threads={threads}");
            for (a, b) in out.answers.iter().zip(&base.answers) {
                assert_eq!(a.ids(), b.ids());
            }
        }
    }

    #[test]
    fn adaptive_constructor_matches_the_adaptive_wrapper() {
        let idx = index(300, 3, 403);
        let mut algo = RdtAlgorithm::adaptive(5, 2.0, 1.0).with_dk_reuse(false);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut algo, &idx);
        let out = run_algorithm_batch(&algo, &idx, &[7, 99], 1);
        for (i, &q) in [7usize, 99].iter().enumerate() {
            let want = crate::adaptive::RdtAdaptive::new(5, 2.0).query(&idx, q);
            assert_eq!(out.answers[i].ids(), want.ids(), "q={q}");
        }
        assert_eq!(
            RknnAlgorithm::<Euclidean, LinearScan<Euclidean>>::name(&algo),
            "RDT+(adaptive)"
        );
    }

    #[test]
    fn apply_update_keeps_cached_answers_exact() {
        use rknn_index::DynamicIndex;
        // Moderate t so refinement runs and fills the cache; the warm-cache
        // run must be byte-identical to a cold prepare at *any* t, because
        // every surviving cached threshold is the bitwise value a fresh
        // computation would produce.
        let mut idx = index(150, 3, 405);
        let params = RdtParams::new(3, 4.0);
        let mut algo = RdtAlgorithm::new(params);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut algo, &idx);
        let _ = run_algorithm_all_points(&algo, &idx, 2); // warm the cache
        let id = idx.insert(&[0.5, 0.5, 0.5]).unwrap();
        algo.apply_update(&idx, IndexUpdate::Inserted(id));
        assert!(idx.remove(7));
        algo.apply_update(&idx, IndexUpdate::Removed(7));
        let queries: Vec<PointId> = (0..=150).filter(|&q| q != 7).collect();
        let warm = run_algorithm_batch(&algo, &idx, &queries, 2);
        // A stale threshold the localized eviction failed to drop would
        // surface as a divergence from the cold rebuild here.
        let mut fresh = RdtAlgorithm::new(params);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut fresh, &idx);
        let cold = run_algorithm_batch(&fresh, &idx, &queries, 2);
        for ((a, b), &q) in warm.answers.iter().zip(&cold.answers).zip(&queries) {
            assert_eq!(a.ids(), b.ids(), "q={q}");
            let av: Vec<u64> = a.result.iter().map(|n| n.dist.to_bits()).collect();
            let bv: Vec<u64> = b.result.iter().map(|n| n.dist.to_bits()).collect();
            assert_eq!(av, bv, "q={q}");
        }
        assert_eq!(
            RknnAlgorithm::<Euclidean, LinearScan<Euclidean>>::maintenance_cost(&algo),
            MaintenanceCost::Localized
        );
        let maint = RknnAlgorithm::<Euclidean, LinearScan<Euclidean>>::maintenance_stats(&algo);
        assert!(maint.dist_computations > 0, "eviction work is accounted");
    }

    #[test]
    fn prewarm_fills_the_cache_and_charges_precompute() {
        let idx = index(120, 3, 406);
        let mut cold = RdtAlgorithm::new(RdtParams::new(4, 4.0));
        let mut warm = RdtAlgorithm::new(RdtParams::new(4, 4.0)).with_prewarm(40);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut cold, &idx);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut warm, &idx);
        assert_eq!(cold.dk_cache().unwrap().filled(), 0);
        assert_eq!(warm.dk_cache().unwrap().filled(), 40);
        let cold_stats = RknnAlgorithm::<Euclidean, LinearScan<Euclidean>>::precompute_stats(&cold);
        let warm_stats = RknnAlgorithm::<Euclidean, LinearScan<Euclidean>>::precompute_stats(&warm);
        assert_eq!(cold_stats.dist_computations, 0);
        assert!(warm_stats.dist_computations > 0, "prewarm work is charged");
        // Prewarming never changes answers, only who pays for the d_k.
        let a = run_algorithm_all_points(&cold, &idx, 1);
        let b = run_algorithm_all_points(&warm, &idx, 1);
        for (x, y) in a.answers.iter().zip(&b.answers) {
            assert_eq!(x.ids(), y.ids());
        }
    }

    #[test]
    fn warmed_instance_answers_identically_without_prepare() {
        let idx = index(150, 3, 407);
        let mut algo = RdtAlgorithm::new(RdtParams::new(3, 4.0));
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut algo, &idx);
        let base = run_algorithm_all_points(&algo, &idx, 2);
        let filled = algo.dk_cache().unwrap().filled();
        assert!(filled > 0, "batch fills the cache");
        let successor = algo.warmed();
        // The successor carries the warm thresholds and is query-ready
        // without a prepare call.
        assert_eq!(successor.dk_cache().unwrap().filled(), filled);
        assert_eq!(successor.dk_cache().unwrap().hit_stats(), (0, 0));
        let again = run_algorithm_all_points(&successor, &idx, 2);
        for (x, y) in base.answers.iter().zip(&again.answers) {
            assert_eq!(x.ids(), y.ids());
            let xv: Vec<u64> = x.result.iter().map(|n| n.dist.to_bits()).collect();
            let yv: Vec<u64> = y.result.iter().map(|n| n.dist.to_bits()).collect();
            assert_eq!(xv, yv);
        }
        let (hits, _) = successor.dk_cache().unwrap().hit_stats();
        assert!(hits > 0, "carried thresholds are actually reused");
    }

    #[test]
    fn requested_threads_prefers_explicit_then_env() {
        assert_eq!(super::requested_threads(3), 3);
        // Explicit requests ignore the environment override.
        std::env::set_var("RKNN_THREADS", "7");
        assert_eq!(super::requested_threads(2), 2);
        assert_eq!(super::requested_threads(0), 7);
        std::env::set_var("RKNN_THREADS", "not-a-number");
        assert!(super::requested_threads(0) >= 1);
        std::env::remove_var("RKNN_THREADS");
        assert!(super::requested_threads(0) >= 1);
    }

    #[test]
    fn empty_query_list_is_fine() {
        let idx = index(40, 2, 404);
        let algo = RdtAlgorithm::new(RdtParams::new(3, 3.0));
        let out = run_algorithm_batch(&algo, &idx, &[], 4);
        assert!(out.answers.is_empty());
        assert_eq!(out.stats, AlgorithmBatchStats::default());
        assert_eq!(out.threads, 1);
    }
}
