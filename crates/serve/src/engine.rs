//! The serving engine: epoch-swapped snapshots and the sharded,
//! work-stealing query executor.
//!
//! # Snapshot / epoch semantics
//!
//! The engine never mutates an index that queries can see. The active
//! [`Snapshot`] lives behind `RwLock<Arc<Snapshot>>`; a worker picking up a
//! query briefly read-locks to clone the `Arc` and then works entirely off
//! its clone — holding the `Arc` *is* the epoch pin, so a concurrently
//! published successor can neither block the query nor pull the index out
//! from under it. [`Engine::publish`] write-locks only to swap one pointer;
//! the old snapshot is freed when the last in-flight query drops its pin.
//! Every [`QueryResponse`] records the epoch it was answered under, so a
//! caller can always attribute a result to exactly one snapshot.
//!
//! # Executor
//!
//! One bounded queue per worker. Submission round-robins across queues and
//! probes the others when the preferred one is full; if every queue is at
//! capacity the submit is rejected with [`SubmitError::Saturated`] — the
//! engine applies backpressure instead of buffering unboundedly. Workers
//! pop their own queue from the front (submission order) and steal from
//! the *back* of sibling queues when idle, the classic split that keeps
//! owned work FIFO while stolen work contends at the far end. Each worker
//! owns one [`RknnAlgorithm::make_worker`] state (cursor scratch, candidate
//! tiles) per epoch, recreated lazily when it first sees a new snapshot.

use rknn_core::{Metric, Neighbor, PointId, SearchStats};
use rknn_index::KnnIndex;
use rknn_rdt::algorithm::{requested_threads, AlgorithmAnswer, RknnAlgorithm};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// An immutable `(epoch, index, prepared algorithm)` triple — the unit the
/// engine serves from and swaps atomically.
///
/// A snapshot is constructed *off to the side* (the engine keeps serving
/// the previous one) and handed to [`Engine::publish`]. The contained
/// algorithm must already be prepared against the contained index; use
/// [`Snapshot::prepare`] when starting cold, or
/// [`crate::advance_snapshot`] to derive a successor that carries RDT's
/// warm `d_k` cache across the swap.
#[derive(Debug)]
pub struct Snapshot<M, I, A> {
    epoch: u64,
    index: I,
    algo: A,
    _metric: PhantomData<fn() -> M>,
}

impl<M, I, A> Snapshot<M, I, A>
where
    M: Metric,
    I: KnnIndex<M>,
    A: RknnAlgorithm<M, I>,
{
    /// Wraps an index and an **already-prepared** algorithm as epoch
    /// `epoch`.
    pub fn new(epoch: u64, index: I, algo: A) -> Self {
        Snapshot {
            epoch,
            index,
            algo,
            _metric: PhantomData,
        }
    }

    /// Prepares `algo` against `index` and wraps both — the cold-start
    /// constructor.
    pub fn prepare(epoch: u64, index: I, mut algo: A) -> Self {
        algo.prepare(&index);
        Snapshot::new(epoch, index, algo)
    }

    /// The epoch this snapshot was published as.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The forward index queries of this epoch run against.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// The prepared algorithm answering this epoch's queries.
    pub fn algo(&self) -> &A {
        &self.algo
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Every shard queue is at capacity. The engine sheds load instead of
    /// buffering unboundedly; retry after draining some tickets.
    Saturated {
        /// Jobs queued across all shards at rejection time.
        queued: usize,
        /// Total queue capacity (shards × per-shard capacity).
        capacity: usize,
    },
    /// The engine is closed: no further submissions are accepted (already
    /// queued work still drains).
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Saturated { queued, capacity } => write!(
                f,
                "executor saturated: {queued} queued of {capacity} capacity"
            ),
            SubmitError::Closed => write!(f, "engine is closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Executor sizing.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads. `0` defers to the `RKNN_THREADS` environment
    /// override, then to [`std::thread::available_parallelism`] (see
    /// [`requested_threads`]).
    pub workers: usize,
    /// Per-shard queue bound; total admission capacity is
    /// `workers × queue_capacity`.
    pub queue_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            queue_capacity: 128,
        }
    }
}

/// The completed answer to one submitted query.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The queried dataset point.
    pub query: PointId,
    /// Epoch of the snapshot that answered — in-flight queries pin their
    /// snapshot, so exactly one epoch is ever consistent with the result.
    pub epoch: u64,
    /// The reverse k-nearest neighbors, ascending by distance.
    pub neighbors: Vec<Neighbor>,
    /// Work spent answering ([`AlgorithmAnswer::work`]).
    pub work: SearchStats,
    /// Index of the worker that executed the query.
    pub worker: usize,
    /// When [`Engine::submit`] accepted the query.
    pub submitted_at: Instant,
    /// When a worker dequeued it.
    pub started_at: Instant,
    /// When the answer was complete.
    pub finished_at: Instant,
}

impl QueryResponse {
    /// Time spent queued before a worker picked the query up.
    pub fn queue_wait(&self) -> Duration {
        self.started_at.saturating_duration_since(self.submitted_at)
    }

    /// Time spent executing the query.
    pub fn service(&self) -> Duration {
        self.finished_at.saturating_duration_since(self.started_at)
    }

    /// Accept-to-answer latency (queue wait + service).
    pub fn total(&self) -> Duration {
        self.finished_at
            .saturating_duration_since(self.submitted_at)
    }
}

/// One-slot rendezvous between the worker that answers a query and the
/// caller waiting on its [`Ticket`].
#[derive(Debug)]
struct ResponseCell {
    slot: Mutex<Option<QueryResponse>>,
    ready: Condvar,
}

impl ResponseCell {
    fn fulfill(&self, response: QueryResponse) {
        let mut slot = self.slot.lock().expect("response slot lock");
        debug_assert!(slot.is_none(), "a ticket is fulfilled exactly once");
        *slot = Some(response);
        self.ready.notify_all();
    }
}

/// A claim on one submitted query's eventual [`QueryResponse`].
#[derive(Debug)]
pub struct Ticket {
    cell: Arc<ResponseCell>,
}

impl Ticket {
    /// Blocks until the query completes. Every accepted submission is
    /// answered — workers drain their queues even during shutdown — so
    /// this always returns.
    pub fn wait(self) -> QueryResponse {
        let mut slot = self.cell.slot.lock().expect("response slot lock");
        loop {
            if let Some(response) = slot.take() {
                return response;
            }
            slot = self.cell.ready.wait(slot).expect("response slot lock");
        }
    }

    /// Takes the response if the query already completed, without
    /// blocking.
    pub fn try_take(&self) -> Option<QueryResponse> {
        self.cell.slot.lock().expect("response slot lock").take()
    }
}

/// A queued query.
#[derive(Debug)]
struct Job {
    query: PointId,
    submitted_at: Instant,
    cell: Arc<ResponseCell>,
}

/// Monotonic counters describing an engine's lifetime so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Accepted submissions.
    pub submitted: u64,
    /// Completed (fulfilled) queries.
    pub completed: u64,
    /// Submissions rejected with [`SubmitError::Saturated`].
    pub rejected: u64,
    /// Jobs a worker stole from a sibling's queue.
    pub stolen: u64,
    /// Snapshot publications ([`Engine::publish`]).
    pub swaps: u64,
    /// Jobs currently queued (not yet picked up).
    pub queued: usize,
    /// Epoch of the currently active snapshot.
    pub epoch: u64,
}

/// State shared between the engine handle and its worker threads.
#[derive(Debug)]
struct Shared<M, I, A> {
    snapshot: RwLock<Arc<Snapshot<M, I, A>>>,
    shards: Vec<Mutex<VecDeque<Job>>>,
    queue_capacity: usize,
    /// Queued-job count; workers park only when it reads zero.
    queued: AtomicUsize,
    /// Pairs with `wake`: submission takes this lock around its notify so a
    /// worker checking `queued` under the same lock can never miss it.
    idle: Mutex<()>,
    wake: Condvar,
    open: AtomicBool,
    rr: AtomicUsize,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    stolen: AtomicU64,
    swaps: AtomicU64,
}

/// The long-lived serving engine: worker threads over an epoch-swapped
/// [`Snapshot`], accepting queries through bounded per-worker queues.
///
/// Dropping the engine closes it, drains all queued work, and joins the
/// workers; [`Engine::shutdown`] does the same and returns the final
/// counters.
#[derive(Debug)]
pub struct Engine<M, I, A> {
    shared: Arc<Shared<M, I, A>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl<M, I, A> Engine<M, I, A>
where
    M: Metric + 'static,
    I: KnnIndex<M> + 'static,
    A: RknnAlgorithm<M, I> + Send + Sync + 'static,
{
    /// Starts the engine on an initial snapshot.
    pub fn new(snapshot: Snapshot<M, I, A>, config: EngineConfig) -> Self {
        let workers = requested_threads(config.workers).max(1);
        let queue_capacity = config.queue_capacity.max(1);
        let shared = Arc::new(Shared {
            snapshot: RwLock::new(Arc::new(snapshot)),
            shards: (0..workers)
                .map(|_| Mutex::new(VecDeque::with_capacity(queue_capacity)))
                .collect(),
            queue_capacity,
            queued: AtomicUsize::new(0),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            open: AtomicBool::new(true),
            rr: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rknn-serve-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn engine worker")
            })
            .collect();
        Engine {
            shared,
            handles,
            workers,
        }
    }

    /// Submits a query, returning a [`Ticket`] for its response, or the
    /// reason it was not accepted. Never blocks on a full executor — that
    /// is the caller's backpressure signal.
    pub fn submit(&self, query: PointId) -> Result<Ticket, SubmitError> {
        if !self.shared.open.load(Relaxed) {
            return Err(SubmitError::Closed);
        }
        let cell = Arc::new(ResponseCell {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        let job = Job {
            query,
            submitted_at: Instant::now(),
            cell: Arc::clone(&cell),
        };
        let shards = &self.shared.shards;
        let preferred = self.shared.rr.fetch_add(1, Relaxed) % shards.len();
        let mut job = Some(job);
        for offset in 0..shards.len() {
            let shard = &shards[(preferred + offset) % shards.len()];
            let mut queue = shard.lock().expect("shard queue lock");
            if queue.len() < self.shared.queue_capacity {
                queue.push_back(job.take().expect("job is unspent"));
                drop(queue);
                self.shared.queued.fetch_add(1, Relaxed);
                self.shared.submitted.fetch_add(1, Relaxed);
                let _guard = self.shared.idle.lock().expect("idle lock");
                self.shared.wake.notify_one();
                return Ok(Ticket { cell });
            }
        }
        self.shared.rejected.fetch_add(1, Relaxed);
        Err(SubmitError::Saturated {
            queued: self.shared.queued.load(Relaxed),
            capacity: shards.len() * self.shared.queue_capacity,
        })
    }

    /// Atomically swaps the active snapshot. In-flight queries finish
    /// against the epoch they pinned; queries picked up afterwards see the
    /// new snapshot. Returns the published epoch.
    pub fn publish(&self, snapshot: Snapshot<M, I, A>) -> u64 {
        let epoch = snapshot.epoch;
        *self.shared.snapshot.write().expect("snapshot lock") = Arc::new(snapshot);
        self.shared.swaps.fetch_add(1, Relaxed);
        epoch
    }

    /// Pins and returns the currently active snapshot (the same clone a
    /// worker would take). Used to derive a successor snapshot off to the
    /// side while serving continues.
    pub fn snapshot(&self) -> Arc<Snapshot<M, I, A>> {
        self.shared.snapshot.read().expect("snapshot lock").clone()
    }

    /// Worker threads actually running.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total admission capacity (shards × per-shard bound).
    pub fn queue_capacity(&self) -> usize {
        self.workers * self.shared.queue_capacity
    }

    /// Current counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            submitted: self.shared.submitted.load(Relaxed),
            completed: self.shared.completed.load(Relaxed),
            rejected: self.shared.rejected.load(Relaxed),
            stolen: self.shared.stolen.load(Relaxed),
            swaps: self.shared.swaps.load(Relaxed),
            queued: self.shared.queued.load(Relaxed),
            epoch: self.snapshot().epoch,
        }
    }

    /// Stops accepting submissions. Queued work still drains and every
    /// outstanding [`Ticket`] resolves; workers exit once the queues are
    /// empty.
    pub fn close(&self) {
        self.shared.open.store(false, Relaxed);
        let _guard = self.shared.idle.lock().expect("idle lock");
        self.shared.wake.notify_all();
    }

    /// Closes the engine, drains queued work, joins the workers, and
    /// returns the final counters.
    pub fn shutdown(mut self) -> EngineStats {
        self.join_workers();
        let stats = self.stats();
        drop(self);
        stats
    }

    fn join_workers(&mut self) {
        self.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<M, I, A> Drop for Engine<M, I, A> {
    fn drop(&mut self) {
        self.shared.open.store(false, Relaxed);
        if let Ok(_guard) = self.shared.idle.lock() {
            self.shared.wake.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Pops the next job for worker `w`: own queue from the front, then a
/// steal from the back of each sibling queue.
fn pop_job<M, I, A>(shared: &Shared<M, I, A>, w: usize) -> Option<Job> {
    let shards = &shared.shards;
    if let Some(job) = shards[w].lock().expect("shard queue lock").pop_front() {
        shared.queued.fetch_sub(1, Relaxed);
        return Some(job);
    }
    for offset in 1..shards.len() {
        let victim = &shards[(w + offset) % shards.len()];
        if let Some(job) = victim.lock().expect("shard queue lock").pop_back() {
            shared.queued.fetch_sub(1, Relaxed);
            shared.stolen.fetch_add(1, Relaxed);
            return Some(job);
        }
    }
    None
}

fn worker_loop<M, I, A>(shared: &Shared<M, I, A>, w: usize)
where
    M: Metric,
    I: KnnIndex<M>,
    A: RknnAlgorithm<M, I>,
{
    // The worker's per-epoch state: scratch buffers recreated lazily the
    // first time this worker serves a query under a new snapshot.
    let mut state: Option<(u64, A::Worker)> = None;
    loop {
        let Some(job) = pop_job(shared, w) else {
            if !shared.open.load(Relaxed) {
                // Closed and nothing left to pop anywhere: drained.
                return;
            }
            let guard = shared.idle.lock().expect("idle lock");
            if shared.queued.load(Relaxed) == 0 && shared.open.load(Relaxed) {
                drop(shared.wake.wait(guard).expect("idle lock"));
            }
            continue;
        };
        let started_at = Instant::now();
        // Pin the epoch: holding this Arc keeps the snapshot alive for the
        // whole query even if a successor is published meanwhile.
        let snapshot = shared.snapshot.read().expect("snapshot lock").clone();
        let stale = match &state {
            Some((epoch, _)) => *epoch != snapshot.epoch,
            None => true,
        };
        if stale {
            state = Some((snapshot.epoch, snapshot.algo.make_worker(&snapshot.index)));
        }
        let (_, worker_state) = state.as_mut().expect("worker state initialized");
        let answer = snapshot
            .algo
            .query(&snapshot.index, job.query, worker_state);
        let finished_at = Instant::now();
        job.cell.fulfill(QueryResponse {
            query: job.query,
            epoch: snapshot.epoch,
            neighbors: answer.neighbors().to_vec(),
            work: answer.work(),
            worker: w,
            submitted_at: job.submitted_at,
            started_at,
            finished_at,
        });
        shared.completed.fetch_add(1, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::Euclidean;
    use rknn_index::LinearScan;
    use rknn_rdt::algorithm::{run_algorithm_batch, RdtAlgorithm};
    use rknn_rdt::RdtParams;

    type Eng = Engine<Euclidean, LinearScan<Euclidean>, RdtAlgorithm>;

    fn index(n: usize, seed: u64) -> LinearScan<Euclidean> {
        let ds = rknn_data::gaussian_blobs(n, 4, 3, 0.4, seed).into_shared();
        LinearScan::build(ds, Euclidean)
    }

    fn engine(n: usize, seed: u64, workers: usize, cap: usize) -> Eng {
        let idx = index(n, seed);
        let algo = RdtAlgorithm::new(RdtParams::new(4, 4.0));
        Engine::new(
            Snapshot::prepare(0, idx, algo),
            EngineConfig {
                workers,
                queue_capacity: cap,
            },
        )
    }

    #[test]
    fn serves_byte_identical_to_the_sequential_driver() {
        let idx = index(300, 900);
        let mut algo = RdtAlgorithm::new(RdtParams::new(4, 4.0));
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut algo, &idx);
        let queries: Vec<PointId> = (0..300).step_by(3).collect();
        let want = run_algorithm_batch(&algo, &idx, &queries, 1);

        let eng = engine(300, 900, 3, 64);
        let tickets: Vec<Ticket> = queries.iter().map(|&q| eng.submit(q).unwrap()).collect();
        for (ticket, (i, &q)) in tickets.into_iter().zip(queries.iter().enumerate()) {
            let got = ticket.wait();
            assert_eq!(got.query, q);
            assert_eq!(got.epoch, 0);
            let gv: Vec<(PointId, u64)> = got
                .neighbors
                .iter()
                .map(|n| (n.id, n.dist.to_bits()))
                .collect();
            let wv: Vec<(PointId, u64)> = want.answers[i]
                .result
                .iter()
                .map(|n| (n.id, n.dist.to_bits()))
                .collect();
            assert_eq!(gv, wv, "q={q}");
        }
        let stats = eng.shutdown();
        assert_eq!(stats.submitted, 100);
        assert_eq!(stats.completed, 100);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn saturation_rejects_with_reason_and_loses_nothing() {
        let eng = engine(400, 901, 1, 1);
        let mut tickets = Vec::new();
        let mut rejected = 0usize;
        for q in 0..200 {
            match eng.submit(q % 400) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::Saturated { queued, capacity }) => {
                    assert!(queued <= capacity, "reason fields are coherent");
                    assert_eq!(capacity, 1);
                    rejected += 1;
                }
                Err(SubmitError::Closed) => panic!("engine is open"),
            }
        }
        let accepted = tickets.len();
        for ticket in tickets {
            let _ = ticket.wait();
        }
        let stats = eng.shutdown();
        assert!(rejected > 0, "a one-slot executor must shed rapid load");
        assert_eq!(accepted + rejected, 200, "every submit is accounted");
        assert_eq!(stats.completed, accepted as u64);
        assert_eq!(stats.rejected, rejected as u64);
    }

    #[test]
    fn close_rejects_new_work_but_drains_accepted_work() {
        let eng = engine(200, 902, 2, 32);
        let tickets: Vec<Ticket> = (0..20).map(|q| eng.submit(q).unwrap()).collect();
        eng.close();
        assert!(matches!(eng.submit(0), Err(SubmitError::Closed)));
        for ticket in tickets {
            let _ = ticket.wait(); // every accepted query still resolves
        }
        let stats = eng.shutdown();
        assert_eq!(stats.completed, 20);
    }

    #[test]
    fn publish_swaps_epochs_and_pins_are_consistent() {
        let eng = engine(250, 903, 2, 64);
        let first: Vec<Ticket> = (0..50).map(|q| eng.submit(q).unwrap()).collect();
        // Build the successor off to the side from the pinned snapshot.
        let pinned = eng.snapshot();
        let next_idx = pinned.index().clone();
        let next = Snapshot::new(pinned.epoch() + 1, next_idx, pinned.algo().warmed());
        assert_eq!(eng.publish(next), 1);
        let second: Vec<Ticket> = (0..50).map(|q| eng.submit(q).unwrap()).collect();
        for t in first {
            let r = t.wait();
            assert!(r.epoch <= 1, "pre-publish submissions see epoch 0 or 1");
        }
        for t in second {
            assert_eq!(t.wait().epoch, 1, "post-publish submissions see epoch 1");
        }
        let stats = eng.shutdown();
        assert_eq!(stats.swaps, 1);
        assert_eq!(stats.epoch, 1);
    }

    #[test]
    fn zero_workers_resolves_to_at_least_one() {
        let eng = engine(60, 904, 0, 8);
        assert!(eng.workers() >= 1);
        let t = eng.submit(5).unwrap();
        assert_eq!(t.wait().query, 5);
    }
}
