//! The serving engine: epoch-swapped snapshots and the sharded,
//! work-stealing query executor, hardened for faults.
//!
//! # Snapshot / epoch semantics
//!
//! The engine never mutates an index that queries can see. The active
//! [`Snapshot`] lives behind `RwLock<Arc<Snapshot>>`; a worker picking up a
//! query briefly read-locks to clone the `Arc` and then works entirely off
//! its clone — holding the `Arc` *is* the epoch pin, so a concurrently
//! published successor can neither block the query nor pull the index out
//! from under it. [`Engine::publish`] write-locks only to swap one pointer;
//! the old snapshot is freed when the last in-flight query drops its pin.
//! Every [`QueryResponse`] records the epoch it was answered under, so a
//! caller can always attribute a result to exactly one snapshot.
//!
//! # Executor
//!
//! One bounded queue per worker. Submission round-robins across queues and
//! probes the others when the preferred one is full; if every queue is at
//! capacity the submit either sheds a strictly-lower-priority queued job
//! (resolving that ticket with [`QueryError::Shed`]) or is rejected with
//! [`QueryError::Saturated`] — the engine applies backpressure instead of
//! buffering unboundedly. Workers pop their own queue from the front
//! (submission order) and steal from the *back* of sibling queues when
//! idle, the classic split that keeps owned work FIFO while stolen work
//! contends at the far end. Each worker owns one
//! [`RknnAlgorithm::make_worker`] state (cursor scratch, candidate tiles)
//! per epoch, recreated lazily when it first sees a new snapshot.
//!
//! # Failure model
//!
//! Every accepted submission resolves its [`Ticket`] exactly once, with
//! either an answer or a **typed** [`QueryError`] — never a hang, never a
//! propagated panic, never a silent drop. The guarantees, in order of the
//! request's life:
//!
//! * **Validation at the boundary.** Malformed input (NaN/∞ coordinates,
//!   dimension mismatch, out-of-range ids) is rejected at
//!   [`Engine::submit`] with [`QueryError::InvalidInput`] before it can
//!   reach a worker or a kernel.
//! * **Deadlines.** A request may carry a deadline. Queued past it, the
//!   ticket is shed at dequeue with [`QueryError::DeadlineExceeded`]
//!   without wasting service time; in flight, the deadline rides the
//!   query's [`CancelToken`], checked at tile-block granularity.
//! * **Panic isolation.** Each query runs under `catch_unwind`. A panic
//!   resolves exactly that submitter's ticket with
//!   [`QueryError::Internal`], the worker rebuilds its scratch from
//!   scratch, and a per-worker consecutive-failure breaker quarantines
//!   repeat-offender inputs (the poison-pill log, [`Engine::poison_log`]).
//! * **Supervision.** A worker thread that dies outright (a panic outside
//!   the protected region) is detected by the supervisor thread and
//!   respawned; its in-flight ticket still resolves via a drop guard.
//! * **Honest shutdown.** [`Engine::close`] wakes every parked thread;
//!   tickets still queued when the engine is torn down resolve with
//!   [`QueryError::Closed`]. After a full drain,
//!   `submitted == completed + failed` holds exactly.
//!
//! Deterministic fault injection ([`crate::FaultPlan`]) hooks the
//! submission and execution sequence numbers so chaos tests exercise all
//! of the above reproducibly.

use crate::fault::{Fault, FaultPlan};
use crate::supervisor::{spawn_supervisor, Lifeline, PoisonLog, PoisonPill};
use rknn_core::{CancelToken, CoreError, Metric, Neighbor, PointId, SearchStats};
use rknn_index::KnnIndex;
use rknn_rdt::algorithm::{requested_threads, AlgorithmAnswer, RknnAlgorithm};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// An immutable `(epoch, index, prepared algorithm)` triple — the unit the
/// engine serves from and swaps atomically.
///
/// A snapshot is constructed *off to the side* (the engine keeps serving
/// the previous one) and handed to [`Engine::publish`]. The contained
/// algorithm must already be prepared against the contained index; use
/// [`Snapshot::prepare`] when starting cold, or
/// [`crate::advance_snapshot`] to derive a successor that carries RDT's
/// warm `d_k` cache across the swap.
#[derive(Debug)]
pub struct Snapshot<M, I, A> {
    epoch: u64,
    index: I,
    algo: A,
    _metric: PhantomData<fn() -> M>,
}

impl<M, I, A> Snapshot<M, I, A>
where
    M: Metric,
    I: KnnIndex<M>,
    A: RknnAlgorithm<M, I>,
{
    /// Wraps an index and an **already-prepared** algorithm as epoch
    /// `epoch`.
    pub fn new(epoch: u64, index: I, algo: A) -> Self {
        Snapshot {
            epoch,
            index,
            algo,
            _metric: PhantomData,
        }
    }

    /// Prepares `algo` against `index` and wraps both — the cold-start
    /// constructor.
    pub fn prepare(epoch: u64, index: I, mut algo: A) -> Self {
        algo.prepare(&index);
        Snapshot::new(epoch, index, algo)
    }

    /// The epoch this snapshot was published as.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The forward index queries of this epoch run against.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// The prepared algorithm answering this epoch's queries.
    pub fn algo(&self) -> &A {
        &self.algo
    }
}

/// What a query asks about: a dataset point or an arbitrary location.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryInput {
    /// Reverse-kNN of dataset point `id` (self-excluding, as everywhere in
    /// the workspace).
    Point(PointId),
    /// Reverse-kNN of an external location (nothing excluded). Only
    /// algorithms implementing [`RknnAlgorithm::query_at`] can answer
    /// these; others resolve the ticket with [`QueryError::Unsupported`].
    Coords(Vec<f64>),
}

impl QueryInput {
    /// The dataset point id, when this is a [`QueryInput::Point`].
    pub fn point_id(&self) -> Option<PointId> {
        match self {
            QueryInput::Point(id) => Some(*id),
            QueryInput::Coords(_) => None,
        }
    }
}

/// Scheduling priority of a request. Under saturation the engine may shed
/// a queued strictly-lower-priority job to admit a new one (see
/// [`EngineConfig::shed_lower_priority`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Shed first under overload.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Never shed in favor of other work; can displace `Low` and `Normal`.
    High,
}

/// One query submission: what to ask, how long it may take, how important
/// it is. `PointId` converts directly (`engine.submit(42)?`) for the
/// common no-deadline case.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// What to query.
    pub input: QueryInput,
    /// Absolute deadline. Queued past it the ticket resolves
    /// [`QueryError::DeadlineExceeded`]; in flight it trips the query's
    /// [`CancelToken`] at the next tile-block checkpoint.
    pub deadline: Option<Instant>,
    /// Scheduling priority under saturation.
    pub priority: Priority,
}

impl QueryRequest {
    /// A request for the reverse-kNN of dataset point `q`.
    pub fn point(q: PointId) -> Self {
        QueryRequest {
            input: QueryInput::Point(q),
            deadline: None,
            priority: Priority::default(),
        }
    }

    /// A request for the reverse-kNN of an arbitrary location.
    pub fn coords(coords: Vec<f64>) -> Self {
        QueryRequest {
            input: QueryInput::Coords(coords),
            deadline: None,
            priority: Priority::default(),
        }
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

impl From<PointId> for QueryRequest {
    fn from(q: PointId) -> Self {
        QueryRequest::point(q)
    }
}

/// Why a submission was rejected or an accepted ticket resolved without an
/// answer. Every variant is a *typed, expected* outcome of serving under
/// load and faults — none of them indicates a lost ticket.
///
/// Retry guidance: [`Saturated`](QueryError::Saturated) is the one
/// transient variant worth retrying (see [`crate::RetryPolicy`]).
/// [`Closed`](QueryError::Closed) is permanent. The rest are properties of
/// the request ([`InvalidInput`](QueryError::InvalidInput),
/// [`Unsupported`](QueryError::Unsupported),
/// [`DeadlineExceeded`](QueryError::DeadlineExceeded)) or of the input
/// itself ([`Internal`](QueryError::Internal) — repeat offenders end up
/// quarantined), and will not improve on resubmission.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Every shard queue is at capacity (and nothing shed-able was
    /// queued). The engine sheds load instead of buffering unboundedly;
    /// back off and retry.
    Saturated {
        /// Jobs queued across all shards at rejection time.
        queued: usize,
        /// Total queue capacity (shards × per-shard capacity).
        capacity: usize,
    },
    /// The engine is closed: no further submissions are accepted, and this
    /// ticket — if it was already queued — was swept during teardown.
    Closed,
    /// The request failed boundary validation (dimension mismatch,
    /// non-finite coordinate, unknown point id) and never reached a
    /// worker.
    InvalidInput(CoreError),
    /// The request's deadline passed while it sat queued (or its in-flight
    /// execution was cut short by the deadline); no answer was produced.
    DeadlineExceeded {
        /// How long the request had been waiting when it was shed.
        queued_for: Duration,
    },
    /// The ticket was cancelled via [`Ticket::cancel`] before an answer
    /// was produced.
    Cancelled,
    /// The request was shed from the queue to admit a higher-priority
    /// submission under saturation.
    Shed {
        /// How long the request had been waiting when it was shed.
        queued_for: Duration,
    },
    /// The query panicked inside a worker (or its worker thread died).
    /// The worker was recovered with fresh scratch; only this submitter
    /// observes the failure.
    Internal {
        /// Index of the worker that failed.
        worker: usize,
        /// The panic message, or a description of the worker's death.
        reason: String,
    },
    /// The active algorithm cannot answer this kind of input (currently:
    /// coordinate queries against methods without
    /// [`RknnAlgorithm::query_at`]).
    Unsupported {
        /// [`RknnAlgorithm::name`] of the algorithm that declined.
        algorithm: String,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Saturated { queued, capacity } => write!(
                f,
                "executor saturated: {queued} queued of {capacity} capacity"
            ),
            QueryError::Closed => write!(f, "engine is closed"),
            QueryError::InvalidInput(err) => write!(f, "invalid query: {err}"),
            QueryError::DeadlineExceeded { queued_for } => {
                write!(f, "deadline exceeded after {queued_for:?} in queue")
            }
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::Shed { queued_for } => write!(
                f,
                "shed after {queued_for:?} in queue to admit higher-priority work"
            ),
            QueryError::Internal { worker, reason } => {
                write!(f, "internal error on worker {worker}: {reason}")
            }
            QueryError::Unsupported { algorithm } => {
                write!(
                    f,
                    "algorithm {algorithm:?} does not support this query input"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::InvalidInput(err) => Some(err),
            _ => None,
        }
    }
}

/// Executor sizing and fault-tolerance thresholds.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. `0` defers to the `RKNN_THREADS` environment
    /// override, then to [`std::thread::available_parallelism`] (see
    /// [`requested_threads`]).
    pub workers: usize,
    /// Per-shard queue bound; total admission capacity is
    /// `workers × queue_capacity`.
    pub queue_capacity: usize,
    /// Consecutive panics on one worker before the breaker trips and the
    /// offending input is quarantined outright.
    pub breaker_threshold: u32,
    /// Panics attributed to one *input* (across workers) before that input
    /// is quarantined — subsequent submissions of it resolve
    /// [`QueryError::Internal`] without touching a worker.
    pub poison_threshold: u32,
    /// Under saturation, shed a queued strictly-lower-priority job to
    /// admit the new one (resolving the victim's ticket
    /// [`QueryError::Shed`]) instead of rejecting outright.
    pub shed_lower_priority: bool,
    /// Deterministic fault-injection schedule, for chaos tests. `None` in
    /// production.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            queue_capacity: 128,
            breaker_threshold: 3,
            poison_threshold: 2,
            shed_lower_priority: true,
            faults: None,
        }
    }
}

/// The completed answer to one submitted query.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The queried input.
    pub query: QueryInput,
    /// Epoch of the snapshot that answered — in-flight queries pin their
    /// snapshot, so exactly one epoch is ever consistent with the result.
    pub epoch: u64,
    /// The reverse k-nearest neighbors, ascending by distance.
    pub neighbors: Vec<Neighbor>,
    /// Work spent answering ([`AlgorithmAnswer::work`]).
    pub work: SearchStats,
    /// Index of the worker that executed the query.
    pub worker: usize,
    /// When [`Engine::submit`] accepted the query.
    pub submitted_at: Instant,
    /// When a worker dequeued it.
    pub started_at: Instant,
    /// When the answer was complete.
    pub finished_at: Instant,
}

impl QueryResponse {
    /// The queried dataset point, for [`QueryInput::Point`] requests.
    pub fn point_id(&self) -> Option<PointId> {
        self.query.point_id()
    }

    /// Time spent queued before a worker picked the query up.
    pub fn queue_wait(&self) -> Duration {
        self.started_at.saturating_duration_since(self.submitted_at)
    }

    /// Time spent executing the query.
    pub fn service(&self) -> Duration {
        self.finished_at.saturating_duration_since(self.started_at)
    }

    /// Accept-to-answer latency (queue wait + service).
    pub fn total(&self) -> Duration {
        self.finished_at
            .saturating_duration_since(self.submitted_at)
    }
}

/// Locks a mutex, recovering the guard if a panicking thread poisoned it —
/// the engine's own invariants (idempotent fulfillment, atomic counters,
/// full-value cache stores) do not depend on lock poisoning.
pub(crate) fn lock_mutex<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison recovery as [`lock_mutex`].
pub(crate) fn wait_cv<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// One-slot rendezvous between the worker that resolves a query and the
/// caller waiting on its [`Ticket`].
#[derive(Debug)]
pub(crate) struct ResponseCell {
    pub(crate) slot: Mutex<Option<Result<QueryResponse, QueryError>>>,
    pub(crate) ready: Condvar,
    /// Trips the in-flight query's [`CancelToken`]; set by
    /// [`Ticket::cancel`].
    pub(crate) cancel: Arc<AtomicBool>,
}

impl ResponseCell {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ResponseCell {
            slot: Mutex::new(None),
            ready: Condvar::new(),
            cancel: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Resolves the ticket. Idempotent, first outcome wins: a ticket can
    /// race between (say) a worker's drop guard and the shutdown sweep,
    /// and the waiter must observe exactly one outcome.
    pub(crate) fn fulfill(&self, outcome: Result<QueryResponse, QueryError>) -> bool {
        let mut slot = lock_mutex(&self.slot);
        if slot.is_some() {
            return false;
        }
        *slot = Some(outcome);
        self.ready.notify_all();
        true
    }
}

/// A claim on one submitted query's eventual outcome.
#[derive(Debug)]
pub struct Ticket {
    cell: Arc<ResponseCell>,
}

impl Ticket {
    /// Blocks until the query resolves. Every accepted submission resolves
    /// exactly once — with an answer or a typed [`QueryError`] — even
    /// through worker panics, worker deaths, and shutdown, so this always
    /// returns.
    pub fn wait(self) -> Result<QueryResponse, QueryError> {
        let mut slot = lock_mutex(&self.cell.slot);
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = wait_cv(&self.cell.ready, slot);
        }
    }

    /// Blocks until the query resolves or `timeout` elapses; `None` on
    /// timeout (the ticket stays claimable).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<QueryResponse, QueryError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = lock_mutex(&self.cell.slot);
        loop {
            if let Some(outcome) = slot.take() {
                return Some(outcome);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timed_out) = self
                .cell
                .ready
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
    }

    /// Takes the outcome if the query already resolved, without blocking.
    pub fn try_take(&self) -> Option<Result<QueryResponse, QueryError>> {
        lock_mutex(&self.cell.slot).take()
    }

    /// Requests cancellation: a queued job resolves
    /// [`QueryError::Cancelled`] at dequeue; an in-flight query observes
    /// the trip at its next tile-block checkpoint. Cooperative — a query
    /// that already finished keeps its answer.
    pub fn cancel(&self) {
        self.cell.cancel.store(true, Relaxed);
    }
}

/// A queued query.
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) input: QueryInput,
    pub(crate) submitted_at: Instant,
    pub(crate) deadline: Option<Instant>,
    pub(crate) priority: Priority,
    pub(crate) cell: Arc<ResponseCell>,
}

/// Monotonic counters describing an engine's lifetime so far.
///
/// The accounting anchor is `submitted == completed + failed` once the
/// engine has drained: every accepted ticket resolves exactly once, with
/// an answer (`completed`) or a typed error (`failed`). The remaining
/// counters break `failed` and the submit-time rejections down by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Accepted submissions (each holds exactly one eventual outcome).
    pub submitted: u64,
    /// Tickets resolved with an answer.
    pub completed: u64,
    /// Tickets resolved with a typed error (deadline, shed, cancel,
    /// internal, unsupported, shutdown sweep).
    pub failed: u64,
    /// Submissions rejected with [`QueryError::Saturated`] (including
    /// injected queue-full windows).
    pub rejected: u64,
    /// Submissions rejected with [`QueryError::InvalidInput`].
    pub invalid_inputs: u64,
    /// Saturated rejections injected by the fault plan.
    pub injected_rejects: u64,
    /// Tickets resolved [`QueryError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Tickets resolved [`QueryError::Cancelled`].
    pub cancelled: u64,
    /// Tickets resolved [`QueryError::Shed`] (priority displacement).
    pub shed: u64,
    /// Tickets resolved [`QueryError::Internal`] (panics, worker deaths,
    /// quarantined inputs).
    pub internal_errors: u64,
    /// Tickets swept with [`QueryError::Closed`] at teardown.
    pub aborted: u64,
    /// Worker panics observed (caught or fatal).
    pub panics: u64,
    /// Worker threads respawned by the supervisor.
    pub respawns: u64,
    /// Inputs quarantined by the poison log.
    pub quarantined: u64,
    /// Jobs a worker stole from a sibling's queue.
    pub stolen: u64,
    /// Snapshot publications ([`Engine::publish`]).
    pub swaps: u64,
    /// Jobs currently queued (not yet picked up).
    pub queued: usize,
    /// Epoch of the currently active snapshot.
    pub epoch: u64,
}

/// State shared between the engine handle, its worker threads, and the
/// supervisor.
#[derive(Debug)]
pub(crate) struct Shared<M, I, A> {
    pub(crate) snapshot: RwLock<Arc<Snapshot<M, I, A>>>,
    pub(crate) shards: Vec<Mutex<VecDeque<Job>>>,
    pub(crate) queue_capacity: usize,
    /// Queued-job count; workers park only when it reads zero.
    pub(crate) queued: AtomicUsize,
    /// Pairs with `wake`: submission takes this lock around its notify so a
    /// worker checking `queued` under the same lock can never miss it.
    pub(crate) idle: Mutex<()>,
    pub(crate) wake: Condvar,
    pub(crate) open: AtomicBool,
    pub(crate) rr: AtomicUsize,
    /// Submission sequence (every non-closed submit attempt), keying the
    /// fault plan's rejection windows.
    pub(crate) submit_seq: AtomicU64,
    /// Execution sequence (every dequeued job), keying injected worker
    /// faults.
    pub(crate) exec_seq: AtomicU64,
    pub(crate) faults: Option<Arc<FaultPlan>>,
    pub(crate) breaker_threshold: u32,
    pub(crate) poison_threshold: u32,
    pub(crate) shed_lower_priority: bool,
    /// Inputs blamed for worker panics; quarantined ones are refused at
    /// dequeue.
    pub(crate) poison: Mutex<PoisonLog>,
    /// Indices of workers whose threads died; the supervisor drains this.
    pub(crate) dead: Mutex<Vec<usize>>,
    /// Wakes the supervisor when `dead` gains an entry (or at close).
    pub(crate) reap: Condvar,
    /// Worker join handles, indexed by worker; the supervisor swaps in
    /// replacements, teardown drains them.
    pub(crate) handles: Mutex<Vec<Option<std::thread::JoinHandle<()>>>>,
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) invalid_inputs: AtomicU64,
    pub(crate) injected_rejects: AtomicU64,
    pub(crate) deadline_exceeded: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) internal_errors: AtomicU64,
    pub(crate) aborted: AtomicU64,
    pub(crate) panics: AtomicU64,
    pub(crate) respawns: AtomicU64,
    pub(crate) quarantined: AtomicU64,
    pub(crate) stolen: AtomicU64,
    pub(crate) swaps: AtomicU64,
}

/// The long-lived serving engine: supervised worker threads over an
/// epoch-swapped [`Snapshot`], accepting queries through bounded
/// per-worker queues, resolving every accepted ticket exactly once.
///
/// Dropping the engine closes it, drains or sweeps all queued work, and
/// joins the workers; [`Engine::shutdown`] does the same and returns the
/// final counters.
#[derive(Debug)]
pub struct Engine<M, I, A> {
    shared: Arc<Shared<M, I, A>>,
    supervisor: Option<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl<M, I, A> Engine<M, I, A>
where
    M: Metric + 'static,
    I: KnnIndex<M> + 'static,
    A: RknnAlgorithm<M, I> + Send + Sync + 'static,
{
    /// Starts the engine on an initial snapshot.
    pub fn new(snapshot: Snapshot<M, I, A>, config: EngineConfig) -> Self {
        let workers = requested_threads(config.workers).max(1);
        let queue_capacity = config.queue_capacity.max(1);
        let shared = Arc::new(Shared {
            snapshot: RwLock::new(Arc::new(snapshot)),
            shards: (0..workers)
                .map(|_| Mutex::new(VecDeque::with_capacity(queue_capacity)))
                .collect(),
            queue_capacity,
            queued: AtomicUsize::new(0),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            open: AtomicBool::new(true),
            rr: AtomicUsize::new(0),
            submit_seq: AtomicU64::new(0),
            exec_seq: AtomicU64::new(0),
            faults: config.faults.clone(),
            breaker_threshold: config.breaker_threshold.max(1),
            poison_threshold: config.poison_threshold.max(1),
            shed_lower_priority: config.shed_lower_priority,
            poison: Mutex::new(PoisonLog::default()),
            dead: Mutex::new(Vec::new()),
            reap: Condvar::new(),
            handles: Mutex::new((0..workers).map(|_| None).collect()),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            invalid_inputs: AtomicU64::new(0),
            injected_rejects: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            internal_errors: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
        });
        for w in 0..workers {
            spawn_worker(&shared, w);
        }
        let supervisor = Some(spawn_supervisor(Arc::clone(&shared)));
        Engine {
            shared,
            supervisor,
            workers,
        }
    }

    /// Submits a query, returning a [`Ticket`] for its eventual outcome,
    /// or the reason it was not accepted. Validates the input at this
    /// boundary; never blocks on a full executor — saturation is the
    /// caller's backpressure signal (see [`crate::RetryPolicy`]).
    pub fn submit(&self, request: impl Into<QueryRequest>) -> Result<Ticket, QueryError> {
        let request = request.into();
        if !self.shared.open.load(Relaxed) {
            return Err(QueryError::Closed);
        }
        let sseq = self.shared.submit_seq.fetch_add(1, Relaxed);
        if let Some(faults) = &self.shared.faults {
            if faults.rejects_submit(sseq) {
                self.shared.injected_rejects.fetch_add(1, Relaxed);
                self.shared.rejected.fetch_add(1, Relaxed);
                return Err(QueryError::Saturated {
                    queued: self.shared.queued.load(Relaxed),
                    capacity: self.shared.shards.len() * self.shared.queue_capacity,
                });
            }
        }
        if let Err(err) = self.validate(&request.input) {
            self.shared.invalid_inputs.fetch_add(1, Relaxed);
            return Err(QueryError::InvalidInput(err));
        }
        let cell = ResponseCell::new();
        let job = Job {
            input: request.input,
            submitted_at: Instant::now(),
            deadline: request.deadline,
            priority: request.priority,
            cell: Arc::clone(&cell),
        };
        let shards = &self.shared.shards;
        let preferred = self.shared.rr.fetch_add(1, Relaxed) % shards.len();
        let mut job = Some(job);
        for offset in 0..shards.len() {
            let shard = &shards[(preferred + offset) % shards.len()];
            let mut queue = lock_mutex(shard);
            if queue.len() < self.shared.queue_capacity {
                queue.push_back(job.take().expect("job is unspent"));
                drop(queue);
                self.shared.queued.fetch_add(1, Relaxed);
                self.shared.submitted.fetch_add(1, Relaxed);
                let _guard = lock_mutex(&self.shared.idle);
                self.shared.wake.notify_one();
                return Ok(Ticket { cell });
            }
        }
        // Every queue is full. Before rejecting, try to displace a queued
        // job of strictly lower priority: newest such job, lowest priority
        // first, so `High` traffic stays admissible through a `Low` flood.
        if self.shared.shed_lower_priority {
            let incoming = job.as_ref().expect("job is unspent").priority;
            for offset in 0..shards.len() {
                let shard = &shards[(preferred + offset) % shards.len()];
                let mut queue = lock_mutex(shard);
                let victim_at = queue
                    .iter()
                    .enumerate()
                    .rev()
                    .filter(|(_, queued)| queued.priority < incoming)
                    .min_by_key(|(_, queued)| queued.priority)
                    .map(|(i, _)| i);
                if let Some(i) = victim_at {
                    let victim = queue.remove(i).expect("victim index is in range");
                    queue.push_back(job.take().expect("job is unspent"));
                    drop(queue);
                    // Queue population is unchanged: one out, one in.
                    self.shared.submitted.fetch_add(1, Relaxed);
                    self.shared.shed.fetch_add(1, Relaxed);
                    self.shared.failed.fetch_add(1, Relaxed);
                    victim.cell.fulfill(Err(QueryError::Shed {
                        queued_for: victim.submitted_at.elapsed(),
                    }));
                    let _guard = lock_mutex(&self.shared.idle);
                    self.shared.wake.notify_one();
                    return Ok(Ticket { cell });
                }
            }
        }
        self.shared.rejected.fetch_add(1, Relaxed);
        Err(QueryError::Saturated {
            queued: self.shared.queued.load(Relaxed),
            capacity: shards.len() * self.shared.queue_capacity,
        })
    }

    /// Boundary validation against the currently active snapshot.
    fn validate(&self, input: &QueryInput) -> Result<(), CoreError> {
        let snapshot = self.snapshot();
        match input {
            QueryInput::Point(id) => {
                if !snapshot.index().has_point(*id) {
                    return Err(CoreError::UnknownPoint(*id));
                }
                Ok(())
            }
            QueryInput::Coords(coords) => snapshot.algo().validate_query(snapshot.index(), coords),
        }
    }

    /// Atomically swaps the active snapshot. In-flight queries finish
    /// against the epoch they pinned; queries picked up afterwards see the
    /// new snapshot. Returns the published epoch.
    pub fn publish(&self, snapshot: Snapshot<M, I, A>) -> u64 {
        let epoch = snapshot.epoch;
        *self
            .shared
            .snapshot
            .write()
            .unwrap_or_else(PoisonError::into_inner) = Arc::new(snapshot);
        self.shared.swaps.fetch_add(1, Relaxed);
        epoch
    }

    /// Pins and returns the currently active snapshot (the same clone a
    /// worker would take). Used to derive a successor snapshot off to the
    /// side while serving continues.
    pub fn snapshot(&self) -> Arc<Snapshot<M, I, A>> {
        self.shared
            .snapshot
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Worker threads the engine was sized for (respawns keep this
    /// constant).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total admission capacity (shards × per-shard bound).
    pub fn queue_capacity(&self) -> usize {
        self.workers * self.shared.queue_capacity
    }

    /// Current counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            submitted: self.shared.submitted.load(Relaxed),
            completed: self.shared.completed.load(Relaxed),
            failed: self.shared.failed.load(Relaxed),
            rejected: self.shared.rejected.load(Relaxed),
            invalid_inputs: self.shared.invalid_inputs.load(Relaxed),
            injected_rejects: self.shared.injected_rejects.load(Relaxed),
            deadline_exceeded: self.shared.deadline_exceeded.load(Relaxed),
            cancelled: self.shared.cancelled.load(Relaxed),
            shed: self.shared.shed.load(Relaxed),
            internal_errors: self.shared.internal_errors.load(Relaxed),
            aborted: self.shared.aborted.load(Relaxed),
            panics: self.shared.panics.load(Relaxed),
            respawns: self.shared.respawns.load(Relaxed),
            quarantined: self.shared.quarantined.load(Relaxed),
            stolen: self.shared.stolen.load(Relaxed),
            swaps: self.shared.swaps.load(Relaxed),
            queued: self.shared.queued.load(Relaxed),
            epoch: self.snapshot().epoch,
        }
    }

    /// The poison-pill log: inputs blamed for worker panics, with failure
    /// counts, quarantine status, and the last panic reason.
    pub fn poison_log(&self) -> Vec<PoisonPill> {
        lock_mutex(&self.shared.poison).pills().to_vec()
    }

    /// Stops accepting submissions and wakes every parked thread — workers
    /// (so blocked-at-capacity producers observing [`QueryError::Closed`]
    /// can make progress and workers can drain), and the supervisor (so it
    /// can exit). Queued work still drains; tickets still queued when the
    /// engine is finally torn down resolve [`QueryError::Closed`].
    pub fn close(&self) {
        self.shared.open.store(false, Relaxed);
        {
            let _guard = lock_mutex(&self.shared.idle);
            self.shared.wake.notify_all();
        }
        {
            let _guard = lock_mutex(&self.shared.dead);
            self.shared.reap.notify_all();
        }
    }

    /// Closes the engine, drains queued work, joins all threads, sweeps
    /// any stranded tickets with [`QueryError::Closed`], and returns the
    /// final counters.
    pub fn shutdown(mut self) -> EngineStats {
        self.join_all();
        let stats = self.stats();
        drop(self);
        stats
    }

    fn join_all(&mut self) {
        self.close();
        // Join the supervisor first: after it exits no new workers can be
        // spawned, so the handle sweep below is complete.
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        loop {
            let handle = {
                let mut handles = lock_mutex(&self.shared.handles);
                handles.iter_mut().find_map(|slot| slot.take())
            };
            match handle {
                Some(handle) => {
                    let _ = handle.join();
                }
                None => break,
            }
        }
        // If every worker died (or died after close) jobs can be stranded
        // in the queues; every ticket still resolves, with `Closed`.
        while let Some(job) = pop_job(&self.shared, 0) {
            self.shared.aborted.fetch_add(1, Relaxed);
            self.shared.failed.fetch_add(1, Relaxed);
            job.cell.fulfill(Err(QueryError::Closed));
        }
    }
}

impl<M, I, A> Drop for Engine<M, I, A> {
    fn drop(&mut self) {
        // Mirrors `join_all` without the trait bounds `Drop` cannot have.
        self.shared.open.store(false, Relaxed);
        {
            let _guard = lock_mutex(&self.shared.idle);
            self.shared.wake.notify_all();
        }
        {
            let _guard = lock_mutex(&self.shared.dead);
            self.shared.reap.notify_all();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        loop {
            let handle = {
                let mut handles = lock_mutex(&self.shared.handles);
                handles.iter_mut().find_map(|slot| slot.take())
            };
            match handle {
                Some(handle) => {
                    let _ = handle.join();
                }
                None => break,
            }
        }
        for shard in &self.shared.shards {
            let mut queue = lock_mutex(shard);
            while let Some(job) = queue.pop_front() {
                self.shared.queued.fetch_sub(1, Relaxed);
                self.shared.aborted.fetch_add(1, Relaxed);
                self.shared.failed.fetch_add(1, Relaxed);
                job.cell.fulfill(Err(QueryError::Closed));
            }
        }
    }
}

/// Spawns (or respawns) worker `w`, storing its join handle in
/// [`Shared::handles`]. The [`Lifeline`] drop guard reports the thread to
/// the supervisor if it dies by panic rather than returning.
pub(crate) fn spawn_worker<M, I, A>(shared: &Arc<Shared<M, I, A>>, w: usize)
where
    M: Metric + 'static,
    I: KnnIndex<M> + 'static,
    A: RknnAlgorithm<M, I> + Send + Sync + 'static,
{
    let thread_shared = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("rknn-serve-{w}"))
        .spawn(move || {
            let lifeline = Lifeline::arm(Arc::clone(&thread_shared), w);
            worker_loop(&thread_shared, w);
            lifeline.disarm();
        })
        .expect("spawn engine worker");
    lock_mutex(&shared.handles)[w] = Some(handle);
}

/// Pops the next job for worker `w`: own queue from the front, then a
/// steal from the back of each sibling queue.
pub(crate) fn pop_job<M, I, A>(shared: &Shared<M, I, A>, w: usize) -> Option<Job> {
    let shards = &shared.shards;
    if let Some(job) = lock_mutex(&shards[w]).pop_front() {
        shared.queued.fetch_sub(1, Relaxed);
        return Some(job);
    }
    for offset in 1..shards.len() {
        let victim = &shards[(w + offset) % shards.len()];
        if let Some(job) = lock_mutex(victim).pop_back() {
            shared.queued.fetch_sub(1, Relaxed);
            shared.stolen.fetch_add(1, Relaxed);
            return Some(job);
        }
    }
    None
}

/// Renders a `catch_unwind` payload for [`QueryError::Internal`].
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Resolves an in-flight job's ticket if the worker thread dies while
/// holding it — the last line of the "no ticket is ever lost" guarantee.
/// Armed around the execution region, defused on every explicit outcome.
struct JobGuard<'a, M, I, A> {
    shared: &'a Shared<M, I, A>,
    cell: &'a Arc<ResponseCell>,
    worker: usize,
    armed: bool,
}

impl<'a, M, I, A> JobGuard<'a, M, I, A> {
    fn arm(shared: &'a Shared<M, I, A>, cell: &'a Arc<ResponseCell>, worker: usize) -> Self {
        JobGuard {
            shared,
            cell,
            worker,
            armed: true,
        }
    }

    fn defuse(mut self) {
        self.armed = false;
    }
}

impl<M, I, A> Drop for JobGuard<'_, M, I, A> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.shared.failed.fetch_add(1, Relaxed);
        self.shared.internal_errors.fetch_add(1, Relaxed);
        self.shared.panics.fetch_add(1, Relaxed);
        self.cell.fulfill(Err(QueryError::Internal {
            worker: self.worker,
            reason: "worker thread died while executing this query".to_string(),
        }));
    }
}

pub(crate) fn worker_loop<M, I, A>(shared: &Arc<Shared<M, I, A>>, w: usize)
where
    M: Metric,
    I: KnnIndex<M>,
    A: RknnAlgorithm<M, I>,
{
    // The worker's per-epoch state: scratch buffers recreated lazily the
    // first time this worker serves a query under a new snapshot, and
    // discarded wholesale after a panic (the scratch may be mid-mutation).
    let mut state: Option<(u64, A::Worker)> = None;
    // The breaker: consecutive failed queries on *this* worker. Trips into
    // quarantining the current input at `breaker_threshold`.
    let mut consecutive_failures: u32 = 0;
    loop {
        let Some(job) = pop_job(shared, w) else {
            if !shared.open.load(Relaxed) {
                // Closed and nothing left to pop anywhere: drained.
                return;
            }
            let guard = lock_mutex(&shared.idle);
            if shared.queued.load(Relaxed) == 0 && shared.open.load(Relaxed) {
                drop(wait_cv(&shared.wake, guard));
            }
            continue;
        };
        let eseq = shared.exec_seq.fetch_add(1, Relaxed);
        let started_at = Instant::now();
        // Deadline shed at dequeue: don't spend service time on a ticket
        // whose submitter has already given up.
        if let Some(deadline) = job.deadline {
            if started_at >= deadline {
                shared.deadline_exceeded.fetch_add(1, Relaxed);
                shared.failed.fetch_add(1, Relaxed);
                job.cell.fulfill(Err(QueryError::DeadlineExceeded {
                    queued_for: started_at.saturating_duration_since(job.submitted_at),
                }));
                continue;
            }
        }
        if job.cell.cancel.load(Relaxed) {
            shared.cancelled.fetch_add(1, Relaxed);
            shared.failed.fetch_add(1, Relaxed);
            job.cell.fulfill(Err(QueryError::Cancelled));
            continue;
        }
        // Quarantined inputs never reach the algorithm again.
        if lock_mutex(&shared.poison).is_quarantined(&job.input) {
            shared.internal_errors.fetch_add(1, Relaxed);
            shared.failed.fetch_add(1, Relaxed);
            job.cell.fulfill(Err(QueryError::Internal {
                worker: w,
                reason: "input quarantined after repeated worker panics".to_string(),
            }));
            continue;
        }
        // Injected faults, keyed deterministically on the execution slot.
        let mut inject_panic = false;
        if let Some(fault) = shared.faults.as_ref().and_then(|f| f.at_execution(eseq)) {
            match fault {
                Fault::Delay(delay) => std::thread::sleep(delay),
                Fault::Panic => inject_panic = true,
                Fault::Death => {
                    // Outside the catch_unwind region: the thread dies, the
                    // guard resolves the ticket, the Lifeline wakes the
                    // supervisor.
                    let _guard = JobGuard::arm(shared, &job.cell, w);
                    panic!("injected fault: worker death at execution slot {eseq}");
                }
            }
        }
        // Pin the epoch: holding this Arc keeps the snapshot alive for the
        // whole query even if a successor is published meanwhile.
        let snapshot = shared
            .snapshot
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let cancel = CancelToken::from_flag(Arc::clone(&job.cell.cancel), job.deadline);
        let guard = JobGuard::arm(shared, &job.cell, w);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected fault: worker panic at execution slot {eseq}");
            }
            let stale = match &state {
                Some((epoch, _)) => *epoch != snapshot.epoch,
                None => true,
            };
            if stale {
                state = Some((snapshot.epoch, snapshot.algo.make_worker(&snapshot.index)));
            }
            let (_, worker_state) = state.as_mut().expect("worker state initialized");
            match &job.input {
                QueryInput::Point(q) => snapshot
                    .algo
                    .query_cancellable(&snapshot.index, *q, worker_state, &cancel)
                    .map(Some),
                QueryInput::Coords(coords) => {
                    match snapshot
                        .algo
                        .query_at(&snapshot.index, coords, worker_state, &cancel)
                    {
                        Some(result) => result.map(Some),
                        None => Ok(None),
                    }
                }
            }
        }));
        let finished_at = Instant::now();
        guard.defuse();
        match outcome {
            Ok(Ok(Some(answer))) => {
                consecutive_failures = 0;
                shared.completed.fetch_add(1, Relaxed);
                job.cell.fulfill(Ok(QueryResponse {
                    query: job.input.clone(),
                    epoch: snapshot.epoch,
                    neighbors: answer.neighbors().to_vec(),
                    work: answer.work(),
                    worker: w,
                    submitted_at: job.submitted_at,
                    started_at,
                    finished_at,
                }));
            }
            Ok(Ok(None)) => {
                shared.failed.fetch_add(1, Relaxed);
                job.cell.fulfill(Err(QueryError::Unsupported {
                    algorithm: snapshot.algo.name(),
                }));
            }
            Ok(Err(_cancelled)) => {
                shared.failed.fetch_add(1, Relaxed);
                let deadline_hit = job.deadline.is_some_and(|d| Instant::now() >= d);
                if deadline_hit {
                    shared.deadline_exceeded.fetch_add(1, Relaxed);
                    job.cell.fulfill(Err(QueryError::DeadlineExceeded {
                        queued_for: started_at.saturating_duration_since(job.submitted_at),
                    }));
                } else {
                    shared.cancelled.fetch_add(1, Relaxed);
                    job.cell.fulfill(Err(QueryError::Cancelled));
                }
            }
            Err(payload) => {
                // The scratch may be mid-mutation: rebuild before the next
                // query. The shared snapshot is safe — the algorithm's
                // unwind-safety contract (see `RknnAlgorithm` docs) keeps
                // &self state valid through an unwind.
                state = None;
                consecutive_failures += 1;
                shared.panics.fetch_add(1, Relaxed);
                shared.internal_errors.fetch_add(1, Relaxed);
                shared.failed.fetch_add(1, Relaxed);
                let reason = panic_reason(payload.as_ref());
                {
                    let mut poison = lock_mutex(&shared.poison);
                    let mut newly = poison.record(&job.input, &reason, shared.poison_threshold);
                    if consecutive_failures >= shared.breaker_threshold {
                        newly |= poison.quarantine(&job.input);
                        consecutive_failures = 0;
                    }
                    if newly {
                        shared.quarantined.fetch_add(1, Relaxed);
                    }
                }
                job.cell.fulfill(Err(QueryError::Internal {
                    worker: w,
                    reason: format!("query panicked: {reason}"),
                }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::Euclidean;
    use rknn_index::LinearScan;
    use rknn_rdt::algorithm::{run_algorithm_batch, RdtAlgorithm};
    use rknn_rdt::RdtParams;

    type Eng = Engine<Euclidean, LinearScan<Euclidean>, RdtAlgorithm>;

    fn index(n: usize, seed: u64) -> LinearScan<Euclidean> {
        let ds = rknn_data::gaussian_blobs(n, 4, 3, 0.4, seed).into_shared();
        LinearScan::build(ds, Euclidean)
    }

    fn engine_with(n: usize, seed: u64, config: EngineConfig) -> Eng {
        let idx = index(n, seed);
        let algo = RdtAlgorithm::new(RdtParams::new(4, 4.0));
        Engine::new(Snapshot::prepare(0, idx, algo), config)
    }

    fn engine(n: usize, seed: u64, workers: usize, cap: usize) -> Eng {
        engine_with(
            n,
            seed,
            EngineConfig {
                workers,
                queue_capacity: cap,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn serves_byte_identical_to_the_sequential_driver() {
        let idx = index(300, 900);
        let mut algo = RdtAlgorithm::new(RdtParams::new(4, 4.0));
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut algo, &idx);
        let queries: Vec<PointId> = (0..300).step_by(3).collect();
        let want = run_algorithm_batch(&algo, &idx, &queries, 1);

        let eng = engine(300, 900, 3, 64);
        let tickets: Vec<Ticket> = queries.iter().map(|&q| eng.submit(q).unwrap()).collect();
        for (ticket, (i, &q)) in tickets.into_iter().zip(queries.iter().enumerate()) {
            let got = ticket.wait().expect("fault-free serving answers");
            assert_eq!(got.point_id(), Some(q));
            assert_eq!(got.epoch, 0);
            let gv: Vec<(PointId, u64)> = got
                .neighbors
                .iter()
                .map(|n| (n.id, n.dist.to_bits()))
                .collect();
            let wv: Vec<(PointId, u64)> = want.answers[i]
                .result
                .iter()
                .map(|n| (n.id, n.dist.to_bits()))
                .collect();
            assert_eq!(gv, wv, "q={q}");
        }
        let stats = eng.shutdown();
        assert_eq!(stats.submitted, 100);
        assert_eq!(stats.completed, 100);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn saturation_rejects_with_reason_and_loses_nothing() {
        let eng = engine(400, 901, 1, 1);
        let mut tickets = Vec::new();
        let mut rejected = 0usize;
        for q in 0..200usize {
            match eng.submit(q % 400) {
                Ok(t) => tickets.push(t),
                Err(QueryError::Saturated { queued, capacity }) => {
                    assert!(queued <= capacity, "reason fields are coherent");
                    assert_eq!(capacity, 1);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected submit error: {other}"),
            }
        }
        let accepted = tickets.len();
        for ticket in tickets {
            ticket.wait().expect("accepted queries answer");
        }
        let stats = eng.shutdown();
        assert!(rejected > 0, "a one-slot executor must shed rapid load");
        assert_eq!(accepted + rejected, 200, "every submit is accounted");
        assert_eq!(stats.completed, accepted as u64);
        assert_eq!(stats.rejected, rejected as u64);
        assert_eq!(stats.submitted, stats.completed + stats.failed);
    }

    #[test]
    fn close_rejects_new_work_but_drains_accepted_work() {
        let eng = engine(200, 902, 2, 32);
        let tickets: Vec<Ticket> = (0..20usize).map(|q| eng.submit(q).unwrap()).collect();
        eng.close();
        assert!(matches!(eng.submit(0usize), Err(QueryError::Closed)));
        for ticket in tickets {
            ticket.wait().expect("accepted queries drain after close");
        }
        let stats = eng.shutdown();
        assert_eq!(stats.completed, 20);
    }

    #[test]
    fn publish_swaps_epochs_and_pins_are_consistent() {
        let eng = engine(250, 903, 2, 64);
        let first: Vec<Ticket> = (0..50usize).map(|q| eng.submit(q).unwrap()).collect();
        // Build the successor off to the side from the pinned snapshot.
        let pinned = eng.snapshot();
        let next_idx = pinned.index().clone();
        let next = Snapshot::new(pinned.epoch() + 1, next_idx, pinned.algo().warmed());
        assert_eq!(eng.publish(next), 1);
        let second: Vec<Ticket> = (0..50usize).map(|q| eng.submit(q).unwrap()).collect();
        for t in first {
            let r = t.wait().unwrap();
            assert!(r.epoch <= 1, "pre-publish submissions see epoch 0 or 1");
        }
        for t in second {
            assert_eq!(
                t.wait().unwrap().epoch,
                1,
                "post-publish submissions see epoch 1"
            );
        }
        let stats = eng.shutdown();
        assert_eq!(stats.swaps, 1);
        assert_eq!(stats.epoch, 1);
    }

    #[test]
    fn zero_workers_resolves_to_at_least_one() {
        let eng = engine(60, 904, 0, 8);
        assert!(eng.workers() >= 1);
        let t = eng.submit(5usize).unwrap();
        assert_eq!(t.wait().unwrap().point_id(), Some(5));
    }

    #[test]
    fn invalid_inputs_are_rejected_typed_at_submit() {
        let eng = engine(100, 905, 1, 16);
        // Out-of-range dataset id.
        match eng.submit(100usize) {
            Err(QueryError::InvalidInput(CoreError::UnknownPoint(id))) => assert_eq!(id, 100),
            other => panic!("expected UnknownPoint, got {other:?}"),
        }
        // NaN coordinate.
        match eng.submit(QueryRequest::coords(vec![0.0, f64::NAN, 0.0, 0.0])) {
            Err(QueryError::InvalidInput(CoreError::NonFinite { coordinate, .. })) => {
                assert_eq!(coordinate, 1)
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
        // Infinite coordinate.
        match eng.submit(QueryRequest::coords(vec![f64::INFINITY, 0.0, 0.0, 0.0])) {
            Err(QueryError::InvalidInput(CoreError::NonFinite { coordinate, .. })) => {
                assert_eq!(coordinate, 0)
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
        // Dimension mismatch (index is 4-dimensional).
        match eng.submit(QueryRequest::coords(vec![0.0, 0.0])) {
            Err(QueryError::InvalidInput(CoreError::DimensionMismatch { expected, got })) => {
                assert_eq!((expected, got), (4, 2));
            }
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
        let stats = eng.shutdown();
        assert_eq!(stats.invalid_inputs, 4);
        assert_eq!(stats.submitted, 0, "nothing malformed was accepted");
    }

    #[test]
    fn coordinate_queries_answer_like_point_queries_less_self_exclusion() {
        let eng = engine(150, 906, 2, 32);
        let pinned = eng.snapshot();
        let coords = pinned.index().point(7).to_vec();
        let t = eng.submit(QueryRequest::coords(coords)).unwrap();
        let got = t.wait().expect("coordinate query answers");
        assert_eq!(got.point_id(), None);
        // Located exactly on point 7 with no exclusion, the query's RkNN
        // must contain 7 itself at distance zero.
        assert!(got.neighbors.iter().any(|n| n.id == 7 && n.dist == 0.0));
        eng.shutdown();
    }

    #[test]
    fn queued_past_deadline_sheds_typed_without_service() {
        let plan = FaultPlan::new().delay_at(0, Duration::from_millis(120));
        let eng = engine_with(
            120,
            907,
            EngineConfig {
                workers: 1,
                queue_capacity: 8,
                faults: Some(Arc::new(plan)),
                ..EngineConfig::default()
            },
        );
        // First query wedges the single worker for 120ms.
        let wedge = eng.submit(0usize).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        // Queued behind the wedge with a 1ms budget: must shed at dequeue.
        let doomed = eng
            .submit(QueryRequest::point(1).with_timeout(Duration::from_millis(1)))
            .unwrap();
        match doomed.wait() {
            Err(QueryError::DeadlineExceeded { queued_for }) => {
                assert!(queued_for >= Duration::from_millis(1));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        wedge.wait().expect("the wedged query still answers");
        let stats = eng.shutdown();
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.submitted, stats.completed + stats.failed);
    }

    #[test]
    fn saturation_sheds_lower_priority_for_higher() {
        let plan = FaultPlan::new().delay_at(0, Duration::from_millis(150));
        let eng = engine_with(
            120,
            908,
            EngineConfig {
                workers: 1,
                queue_capacity: 1,
                faults: Some(Arc::new(plan)),
                ..EngineConfig::default()
            },
        );
        // Wedge the worker, then fill the single queue slot with Low work.
        let wedge = eng.submit(0usize).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let low = eng
            .submit(QueryRequest::point(1).with_priority(Priority::Low))
            .unwrap();
        // Normal displaces Low...
        let normal = eng.submit(QueryRequest::point(2)).unwrap();
        match low.wait() {
            Err(QueryError::Shed { .. }) => {}
            other => panic!("expected Shed, got {other:?}"),
        }
        // ...but an equal-priority submission is rejected, not shed.
        match eng.submit(QueryRequest::point(3)) {
            Err(QueryError::Saturated { .. }) => {}
            other => panic!("expected Saturated, got {other:?}"),
        }
        wedge.wait().expect("wedged query answers");
        normal.wait().expect("displacing query answers");
        let stats = eng.shutdown();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.submitted, stats.completed + stats.failed);
    }

    #[test]
    fn cancel_resolves_queued_ticket_typed() {
        let plan = FaultPlan::new().delay_at(0, Duration::from_millis(100));
        let eng = engine_with(
            120,
            909,
            EngineConfig {
                workers: 1,
                queue_capacity: 8,
                faults: Some(Arc::new(plan)),
                ..EngineConfig::default()
            },
        );
        let wedge = eng.submit(0usize).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let victim = eng.submit(1usize).unwrap();
        victim.cancel();
        match victim.wait() {
            Err(QueryError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        wedge.wait().expect("wedged query answers");
        let stats = eng.shutdown();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.submitted, stats.completed + stats.failed);
    }
}
