//! Worker supervision and the poison-pill log.
//!
//! Two layers keep a panicking query from taking serving capacity with it:
//!
//! * **In-thread recovery** (in [`crate::engine`]'s worker loop): queries
//!   run under `catch_unwind`, so an ordinary panic resolves one ticket
//!   with a typed error and the thread lives on with rebuilt scratch.
//! * **Thread-level supervision** (this module): a panic *outside* the
//!   protected region kills the thread. Each worker holds a `Lifeline` —
//!   a drop guard that reports the death to the supervisor thread, which
//!   joins the corpse and respawns a replacement with the same worker
//!   index. Serving capacity is restored without operator action, and the
//!   dying worker's in-flight ticket was already resolved by the engine's
//!   job guard.
//!
//! The [`PoisonLog`] closes the loop on *inputs* that keep panicking
//! workers: each panic is blamed on the input that triggered it, and an
//! input crossing the failure threshold (or tripping a worker's
//! consecutive-failure breaker) is quarantined — later submissions of it
//! resolve [`crate::QueryError::Internal`] straight from the queue,
//! without risking another worker.

use crate::engine::{lock_mutex, spawn_worker, wait_cv, QueryInput, Shared};
use rknn_core::{Metric, PointId};
use rknn_index::KnnIndex;
use rknn_rdt::algorithm::RknnAlgorithm;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

/// Drop guard armed at worker-thread birth: if the thread unwinds instead
/// of returning, the guard's drop runs mid-unwind and reports the death to
/// the supervisor. A clean exit [`disarm`](Lifeline::disarm)s it first.
pub(crate) struct Lifeline<M, I, A> {
    shared: Arc<Shared<M, I, A>>,
    worker: usize,
    armed: bool,
}

impl<M, I, A> Lifeline<M, I, A> {
    /// Arms a lifeline for worker `worker`.
    pub(crate) fn arm(shared: Arc<Shared<M, I, A>>, worker: usize) -> Self {
        Lifeline {
            shared,
            worker,
            armed: true,
        }
    }

    /// The worker exited normally: no death to report.
    pub(crate) fn disarm(mut self) {
        self.armed = false;
    }
}

impl<M, I, A> Drop for Lifeline<M, I, A> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut dead = lock_mutex(&self.shared.dead);
        dead.push(self.worker);
        self.shared.reap.notify_all();
    }
}

/// Spawns the supervisor thread for `shared`.
pub(crate) fn spawn_supervisor<M, I, A>(shared: Arc<Shared<M, I, A>>) -> std::thread::JoinHandle<()>
where
    M: Metric + 'static,
    I: KnnIndex<M> + 'static,
    A: RknnAlgorithm<M, I> + Send + Sync + 'static,
{
    std::thread::Builder::new()
        .name("rknn-serve-supervisor".to_string())
        .spawn(move || supervisor_loop(&shared))
        .expect("spawn engine supervisor")
}

/// Waits for worker deaths and respawns each dead worker into its slot.
/// Exits when the engine closes and no deaths are pending; deaths after
/// that are covered by the engine's shutdown sweep (stranded tickets
/// resolve `Closed`).
fn supervisor_loop<M, I, A>(shared: &Arc<Shared<M, I, A>>)
where
    M: Metric + 'static,
    I: KnnIndex<M> + 'static,
    A: RknnAlgorithm<M, I> + Send + Sync + 'static,
{
    loop {
        let died: Vec<usize> = {
            let mut dead = lock_mutex(&shared.dead);
            while dead.is_empty() && shared.open.load(Relaxed) {
                dead = wait_cv(&shared.reap, dead);
            }
            dead.drain(..).collect()
        };
        if died.is_empty() {
            // Woken by close with nothing to reap: supervision over.
            return;
        }
        for w in died {
            // Join the corpse first so its slot is free, then respawn.
            let corpse = lock_mutex(&shared.handles)[w].take();
            if let Some(handle) = corpse {
                let _ = handle.join();
            }
            spawn_worker(shared, w);
            shared.respawns.fetch_add(1, Relaxed);
        }
    }
}

/// How the poison log identifies an input: dataset ids directly,
/// coordinate queries by their exact bit patterns (so a resubmitted
/// identical query matches, while any perturbation is a fresh input).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PoisonKey {
    /// A dataset-point query.
    Point(PointId),
    /// A coordinate query, keyed by `f64::to_bits` of each coordinate.
    Coords(Vec<u64>),
}

impl PoisonKey {
    /// The key for a query input.
    pub fn of(input: &QueryInput) -> Self {
        match input {
            QueryInput::Point(id) => PoisonKey::Point(*id),
            QueryInput::Coords(coords) => {
                PoisonKey::Coords(coords.iter().map(|c| c.to_bits()).collect())
            }
        }
    }
}

/// One entry of the poison-pill log: an input blamed for at least one
/// worker panic.
#[derive(Debug, Clone, PartialEq)]
pub struct PoisonPill {
    /// The offending input.
    pub key: PoisonKey,
    /// Panics blamed on this input so far.
    pub failures: u32,
    /// Whether the input is quarantined (refused at dequeue).
    pub quarantined: bool,
    /// The most recent panic message blamed on this input.
    pub last_reason: String,
}

/// The poison-pill log: inputs blamed for worker panics, with quarantine
/// state. Small by construction — panics are exceptional — so a scanned
/// `Vec` beats a map here.
#[derive(Debug, Default)]
pub struct PoisonLog {
    pills: Vec<PoisonPill>,
}

impl PoisonLog {
    /// Blames `input` for a panic described by `reason`. Crossing
    /// `threshold` failures quarantines the input; returns whether this
    /// call *newly* quarantined it.
    pub fn record(&mut self, input: &QueryInput, reason: &str, threshold: u32) -> bool {
        let key = PoisonKey::of(input);
        let pill = match self.pills.iter_mut().find(|p| p.key == key) {
            Some(pill) => pill,
            None => {
                self.pills.push(PoisonPill {
                    key,
                    failures: 0,
                    quarantined: false,
                    last_reason: String::new(),
                });
                self.pills.last_mut().expect("just pushed")
            }
        };
        pill.failures += 1;
        pill.last_reason = reason.to_string();
        if !pill.quarantined && pill.failures >= threshold {
            pill.quarantined = true;
            return true;
        }
        false
    }

    /// Quarantines `input` outright (the consecutive-failure breaker
    /// path); returns whether it was *newly* quarantined.
    pub fn quarantine(&mut self, input: &QueryInput) -> bool {
        let key = PoisonKey::of(input);
        match self.pills.iter_mut().find(|p| p.key == key) {
            Some(pill) => {
                if pill.quarantined {
                    false
                } else {
                    pill.quarantined = true;
                    true
                }
            }
            None => {
                self.pills.push(PoisonPill {
                    key,
                    failures: 0,
                    quarantined: true,
                    last_reason: "quarantined by worker failure breaker".to_string(),
                });
                true
            }
        }
    }

    /// Whether `input` is quarantined.
    pub fn is_quarantined(&self, input: &QueryInput) -> bool {
        let key = PoisonKey::of(input);
        self.pills.iter().any(|p| p.quarantined && p.key == key)
    }

    /// The full log, in first-blamed order.
    pub fn pills(&self) -> &[PoisonPill] {
        &self.pills
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poison_log_thresholds_and_quarantines() {
        let mut log = PoisonLog::default();
        let bad = QueryInput::Point(7);
        assert!(
            !log.record(&bad, "boom", 2),
            "first failure: below threshold"
        );
        assert!(!log.is_quarantined(&bad));
        assert!(log.record(&bad, "boom again", 2), "second failure trips");
        assert!(log.is_quarantined(&bad));
        assert!(!log.record(&bad, "still bad", 2), "already quarantined");
        assert_eq!(log.pills().len(), 1);
        assert_eq!(log.pills()[0].failures, 3);
        assert_eq!(log.pills()[0].last_reason, "still bad");
        assert!(!log.is_quarantined(&QueryInput::Point(8)));
    }

    #[test]
    fn breaker_quarantine_is_idempotent_and_keys_coords_by_bits() {
        let mut log = PoisonLog::default();
        let coords = QueryInput::Coords(vec![1.5, -0.0]);
        assert!(log.quarantine(&coords), "newly quarantined");
        assert!(!log.quarantine(&coords), "second trip is a no-op");
        assert!(log.is_quarantined(&QueryInput::Coords(vec![1.5, -0.0])));
        // +0.0 and -0.0 differ bitwise: a different input, not quarantined.
        assert!(!log.is_quarantined(&QueryInput::Coords(vec![1.5, 0.0])));
    }
}
