//! Deterministic fault injection for chaos-testing the serving engine.
//!
//! A [`FaultPlan`] is a *schedule*, not a dice roll at runtime: every fault
//! is keyed to a monotonic sequence number the engine assigns anyway — the
//! submission counter for admission faults, the execution counter for
//! worker faults — so the same plan injects the same faults at the same
//! points of the workload on every run. (With several workers the mapping
//! from execution slot to specific query still depends on scheduling; what
//! reproduces exactly is the fault schedule itself, which is what the chaos
//! gate's invariants — zero lost tickets, typed errors only, byte-identical
//! answers — are written against.)
//!
//! Plans are built either explicitly ([`FaultPlan::panic_at`] and friends)
//! or from a seed ([`FaultPlan::scattered`]), which places a requested
//! number of panics/deaths/delays pseudo-randomly but reproducibly across a
//! span of execution slots.

use std::collections::BTreeMap;
use std::time::Duration;

/// One injected fault, applied when a worker reaches the execution slot the
/// plan keys it to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the engine's `catch_unwind` region: the submitter gets
    /// a typed internal error, the worker thread survives.
    Panic,
    /// Panic *outside* the protected region: the worker thread dies and the
    /// supervisor must respawn it. The in-flight ticket still resolves
    /// (typed internal error) via the engine's drop guard.
    Death,
    /// Sleep this long before executing — an artificial service delay that
    /// wedges the worker, building queue depth and pushing queued tickets
    /// past their deadlines.
    Delay(Duration),
}

/// How many of each fault a plan will inject (for reporting the injected
/// schedule next to the observed outcomes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Caught worker panics scheduled.
    pub panics: usize,
    /// Worker deaths (respawn-requiring) scheduled.
    pub deaths: usize,
    /// Service delays scheduled.
    pub delays: usize,
    /// Total submissions falling inside rejection windows (an upper bound:
    /// windows past the actual workload length never fire).
    pub rejected_submits: u64,
}

/// A deterministic, seedable schedule of injected faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    exec: BTreeMap<u64, Fault>,
    reject: Vec<(u64, u64)>,
}

/// The xorshift64* step used for seeded fault placement — self-contained so
/// plans reproduce without any external RNG dependency.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a caught panic at execution slot `seq`.
    pub fn panic_at(mut self, seq: u64) -> Self {
        self.exec.insert(seq, Fault::Panic);
        self
    }

    /// Schedules a worker death at execution slot `seq`.
    pub fn death_at(mut self, seq: u64) -> Self {
        self.exec.insert(seq, Fault::Death);
        self
    }

    /// Schedules a service delay of `delay` at execution slot `seq`.
    pub fn delay_at(mut self, seq: u64, delay: Duration) -> Self {
        self.exec.insert(seq, Fault::Delay(delay));
        self
    }

    /// Rejects every submission with sequence number in `[from, to)` as if
    /// the executor were saturated — a queue-full window.
    pub fn reject_window(mut self, from: u64, to: u64) -> Self {
        if to > from {
            self.reject.push((from, to));
        }
        self
    }

    /// Places `panics` caught panics, `deaths` worker deaths, and `delays`
    /// service delays (each sleeping `delay`) pseudo-randomly across
    /// execution slots `[0, span)`, deterministically from `seed`.
    /// Collisions resolve by probing the next free slot, so the requested
    /// counts are exact whenever `span` has room for them.
    pub fn scattered(
        seed: u64,
        span: u64,
        panics: usize,
        deaths: usize,
        delays: usize,
        delay: Duration,
    ) -> Self {
        // 2·seed+1: odd (so never zero, as xorshift requires) and
        // injective (so adjacent seeds do not collapse to one stream).
        let mut state = seed.wrapping_mul(2).wrapping_add(1);
        let mut plan = FaultPlan::new();
        let span = span.max(1);
        let wanted: Vec<Fault> = std::iter::repeat_n(Fault::Panic, panics)
            .chain(std::iter::repeat_n(Fault::Death, deaths))
            .chain(std::iter::repeat_n(Fault::Delay(delay), delays))
            .collect();
        for fault in wanted {
            let mut slot = xorshift(&mut state) % span;
            let mut probes = 0;
            while plan.exec.contains_key(&slot) && probes < span {
                slot = (slot + 1) % span;
                probes += 1;
            }
            plan.exec.insert(slot, fault);
        }
        plan
    }

    /// The fault scheduled for execution slot `seq`, if any.
    pub fn at_execution(&self, seq: u64) -> Option<Fault> {
        self.exec.get(&seq).copied()
    }

    /// Whether submission number `seq` falls inside a rejection window.
    pub fn rejects_submit(&self, seq: u64) -> bool {
        self.reject
            .iter()
            .any(|&(from, to)| seq >= from && seq < to)
    }

    /// The scheduled fault totals.
    pub fn counts(&self) -> FaultCounts {
        let mut counts = FaultCounts {
            rejected_submits: self.reject.iter().map(|&(from, to)| to - from).sum(),
            ..FaultCounts::default()
        };
        for fault in self.exec.values() {
            match fault {
                Fault::Panic => counts.panics += 1,
                Fault::Death => counts.deaths += 1,
                Fault::Delay(_) => counts.delays += 1,
            }
        }
        counts
    }

    /// The largest execution slot carrying a fault, if any — callers size
    /// their workloads past this so every scheduled fault actually fires.
    pub fn last_execution_fault(&self) -> Option<u64> {
        self.exec.keys().next_back().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_schedule_triggers_exactly_where_placed() {
        let plan = FaultPlan::new()
            .panic_at(3)
            .death_at(7)
            .delay_at(9, Duration::from_millis(5))
            .reject_window(10, 12);
        assert_eq!(plan.at_execution(3), Some(Fault::Panic));
        assert_eq!(plan.at_execution(7), Some(Fault::Death));
        assert_eq!(
            plan.at_execution(9),
            Some(Fault::Delay(Duration::from_millis(5)))
        );
        assert_eq!(plan.at_execution(4), None);
        assert!(!plan.rejects_submit(9));
        assert!(plan.rejects_submit(10));
        assert!(plan.rejects_submit(11));
        assert!(!plan.rejects_submit(12));
        let counts = plan.counts();
        assert_eq!((counts.panics, counts.deaths, counts.delays), (1, 1, 1));
        assert_eq!(counts.rejected_submits, 2);
        assert_eq!(plan.last_execution_fault(), Some(9));
    }

    #[test]
    fn scattered_is_deterministic_and_exact() {
        let a = FaultPlan::scattered(42, 100, 3, 1, 2, Duration::from_millis(1));
        let b = FaultPlan::scattered(42, 100, 3, 1, 2, Duration::from_millis(1));
        assert_eq!(a.exec, b.exec, "same seed, same schedule");
        let counts = a.counts();
        assert_eq!((counts.panics, counts.deaths, counts.delays), (3, 1, 2));
        let c = FaultPlan::scattered(43, 100, 3, 1, 2, Duration::from_millis(1));
        assert_ne!(a.exec, c.exec, "different seed, different placement");
        assert!(a.last_execution_fault().unwrap() < 100);
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert_eq!(plan.at_execution(0), None);
        assert!(!plan.rejects_submit(0));
        assert_eq!(plan.counts(), FaultCounts::default());
        assert_eq!(plan.last_execution_fault(), None);
    }
}
