//! Building the *next* snapshot off to the side while the engine keeps
//! serving the current one.
//!
//! This is the serving-side continuation of the dynamic-RkNN work: instead
//! of re-preparing from scratch on every catalog change, the successor
//! snapshot clones the live index, applies the churn ops to the clone, and
//! carries the predecessor's warm `d_k` cache forward — evicting only the
//! thresholds each update can actually change
//! ([`rknn_rdt::DkCache::invalidate_near`]'s localized rule). The engine
//! never sees the intermediate states: readers keep answering against the
//! old epoch until [`crate::Engine::publish`] swaps in the finished
//! successor — and on *any* [`AdvanceError`], the published snapshot is
//! untouched, so serving continues on the old epoch as if the advance had
//! never been attempted.

use crate::engine::Snapshot;
use rknn_core::{CoreError, Metric, PointId, SearchStats};
use rknn_index::DynamicIndex;
use rknn_rdt::algorithm::{IndexUpdate, RdtAlgorithm, RknnAlgorithm};
use std::time::{Duration, Instant};

/// One catalog change to fold into the next snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnOp {
    /// Insert a point at the given coordinates.
    Insert(Vec<f64>),
    /// Tombstone the point with this id. Naming a dead or unknown id is an
    /// error ([`AdvanceError::RemoveMissing`]): a churn feed referencing
    /// points that are not live has diverged from the catalog, and
    /// silently dropping the op would hide that.
    Remove(PointId),
}

/// Why a successor snapshot could not be built. The attempted advance has
/// no effect: the predecessor snapshot — and whatever the engine is
/// serving — is untouched.
#[derive(Debug, Clone, PartialEq)]
pub enum AdvanceError {
    /// An insert op was rejected by the index (dimension mismatch,
    /// non-finite coordinates).
    Insert {
        /// Position of the failing op in the `ops` slice.
        op: usize,
        /// The index's rejection.
        source: CoreError,
    },
    /// A remove op named an id that is not live in the index.
    RemoveMissing {
        /// Position of the failing op in the `ops` slice.
        op: usize,
        /// The id that was not live.
        id: PointId,
    },
}

impl std::fmt::Display for AdvanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdvanceError::Insert { op, source } => {
                write!(f, "churn op {op}: insert rejected: {source}")
            }
            AdvanceError::RemoveMissing { op, id } => {
                write!(f, "churn op {op}: remove of id {id} which is not live")
            }
        }
    }
}

impl std::error::Error for AdvanceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdvanceError::Insert { source, .. } => Some(source),
            AdvanceError::RemoveMissing { .. } => None,
        }
    }
}

/// What building a successor snapshot cost.
#[derive(Debug, Clone)]
pub struct AdvanceReport {
    /// Epoch of the successor.
    pub epoch: u64,
    /// Ids assigned to inserted points, in op order.
    pub inserted: Vec<PointId>,
    /// Ids removed, in op order.
    pub removed: Vec<PointId>,
    /// Wall-clock time to clone, mutate, and repair.
    pub build_time: Duration,
    /// Cache-repair work (the localized eviction scans), uniform with the
    /// batch driver's maintenance accounting.
    pub maintenance: SearchStats,
    /// Thresholds still warm in the carried cache after repair (`None`
    /// when the algorithm runs without `d_k` reuse).
    pub cache_filled: Option<usize>,
}

/// Derives the successor of `prev` with `ops` applied: cloned index, warm
/// [`rknn_rdt::DkCache`] carried over via [`RdtAlgorithm::warmed`], and
/// per-op localized eviction through
/// [`RknnAlgorithm::apply_update`]. The result is query-ready — publish it
/// without calling `prepare`.
///
/// Fails with a typed [`AdvanceError`] naming the offending op if an
/// insert is rejected by the index or a remove names an id that is not
/// live; `prev` is untouched either way, so the engine keeps serving the
/// old epoch.
pub fn advance_snapshot<M, I>(
    prev: &Snapshot<M, I, RdtAlgorithm>,
    ops: &[ChurnOp],
) -> Result<(Snapshot<M, I, RdtAlgorithm>, AdvanceReport), AdvanceError>
where
    M: Metric,
    I: DynamicIndex<M> + Clone,
{
    let start = Instant::now();
    let mut index = prev.index().clone();
    let mut algo = prev.algo().warmed();
    let mut inserted = Vec::new();
    let mut removed = Vec::new();
    for (at, op) in ops.iter().enumerate() {
        match op {
            ChurnOp::Insert(coords) => {
                let id = index
                    .insert(coords)
                    .map_err(|source| AdvanceError::Insert { op: at, source })?;
                RknnAlgorithm::<M, I>::apply_update(&mut algo, &index, IndexUpdate::Inserted(id));
                inserted.push(id);
            }
            ChurnOp::Remove(id) => {
                if !index.remove(*id) {
                    return Err(AdvanceError::RemoveMissing { op: at, id: *id });
                }
                RknnAlgorithm::<M, I>::apply_update(&mut algo, &index, IndexUpdate::Removed(*id));
                removed.push(*id);
            }
        }
    }
    let report = AdvanceReport {
        epoch: prev.epoch() + 1,
        inserted,
        removed,
        build_time: start.elapsed(),
        maintenance: RknnAlgorithm::<M, I>::maintenance_stats(&algo),
        cache_filled: algo.dk_cache().map(|c| c.filled()),
    };
    Ok((Snapshot::new(prev.epoch() + 1, index, algo), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::Euclidean;
    use rknn_index::{KnnIndex, LinearScan};
    use rknn_rdt::algorithm::{run_algorithm_batch, RdtAlgorithm};
    use rknn_rdt::RdtParams;

    #[test]
    fn advanced_snapshot_matches_a_cold_rebuild_bitwise() {
        let ds = rknn_data::gaussian_blobs(180, 3, 3, 0.4, 950).into_shared();
        let idx = LinearScan::build(ds, Euclidean);
        let params = RdtParams::new(3, 4.0);
        let snap = Snapshot::prepare(0, idx, RdtAlgorithm::new(params));
        // Warm the cache through the prepared algorithm.
        let queries: Vec<usize> = (0..180).collect();
        let _ = run_algorithm_batch(snap.algo(), snap.index(), &queries, 2);

        let ops = vec![
            ChurnOp::Insert(vec![0.2, 0.3, 0.4]),
            ChurnOp::Remove(11),
            ChurnOp::Insert(vec![0.8, 0.1, 0.5]),
        ];
        let (next, report) = advance_snapshot(&snap, &ops).unwrap();
        assert_eq!(next.epoch(), 1);
        assert_eq!(report.inserted, vec![180, 181]);
        assert_eq!(report.removed, vec![11]);
        assert!(report.maintenance.dist_computations > 0);
        assert!(report.cache_filled.unwrap() > 0, "warm thresholds survive");

        let live: Vec<usize> = (0..182).filter(|&q| q != 11).collect();
        let got = run_algorithm_batch(next.algo(), next.index(), &live, 2);
        let mut cold = RdtAlgorithm::new(params);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut cold, next.index());
        let want = run_algorithm_batch(&cold, next.index(), &live, 2);
        for ((a, b), &q) in got.answers.iter().zip(&want.answers).zip(&live) {
            let av: Vec<(usize, u64)> = a.result.iter().map(|n| (n.id, n.dist.to_bits())).collect();
            let bv: Vec<(usize, u64)> = b.result.iter().map(|n| (n.id, n.dist.to_bits())).collect();
            assert_eq!(av, bv, "q={q}");
        }
        // The predecessor snapshot is untouched by the advance.
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.index().num_points(), 180);
    }

    #[test]
    fn advance_errors_are_typed_and_leave_the_predecessor_intact() {
        let ds = rknn_data::gaussian_blobs(90, 3, 3, 0.4, 951).into_shared();
        let idx = LinearScan::build(ds, Euclidean);
        let snap = Snapshot::prepare(0, idx, RdtAlgorithm::new(RdtParams::new(3, 4.0)));

        // Remove of a dead id after removing it once.
        let err = advance_snapshot(&snap, &[ChurnOp::Remove(5), ChurnOp::Remove(5)]).unwrap_err();
        assert_eq!(err, AdvanceError::RemoveMissing { op: 1, id: 5 });

        // Remove of an id that never existed.
        let err = advance_snapshot(&snap, &[ChurnOp::Remove(400)]).unwrap_err();
        assert_eq!(err, AdvanceError::RemoveMissing { op: 0, id: 400 });

        // Insert rejected by the index: wrong dimensionality.
        let err = advance_snapshot(&snap, &[ChurnOp::Insert(vec![1.0])]).unwrap_err();
        match err {
            AdvanceError::Insert { op: 0, source } => {
                assert!(matches!(source, CoreError::DimensionMismatch { .. }));
            }
            other => panic!("expected Insert error, got {other:?}"),
        }

        // A failed advance changed nothing the engine could observe.
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.index().num_points(), 90);
    }
}
