//! The long-lived concurrent serving layer: the piece that turns the
//! batch-offline reproduction into an engine a live system could run.
//!
//! Everything recorded before this crate existed was one-shot: build an
//! index, answer a query list across scoped threads, exit. A serving
//! system has a different shape — queries arrive continuously at their own
//! rate, the catalog churns underneath them, and the numbers that matter
//! are tail latencies under load, not batch wall-clock. This crate
//! provides that shape without touching the algorithms themselves:
//!
//! * [`Snapshot`] — an immutable `(epoch, index, prepared algorithm)`
//!   triple. Queries only ever see one snapshot; churn produces a *new*
//!   snapshot built off to the side (for RDT, carrying the warm `d_k`
//!   cache forward via [`advance_snapshot`] instead of rebuilding it),
//!   failing with a typed [`AdvanceError`] that leaves the serving
//!   snapshot untouched.
//! * [`Engine`] — supervised worker threads, each owning its scratch, fed
//!   by per-worker bounded queues with work stealing. Submission validates
//!   input at the boundary and applies backpressure
//!   ([`QueryError::Saturated`]) instead of growing without bound;
//!   [`Engine::publish`] swaps the active snapshot epoch-style — readers
//!   never block, in-flight queries finish against the epoch they started
//!   with. Every accepted [`Ticket`] resolves exactly once, with an answer
//!   or a typed [`QueryError`] — through deadlines, cancellation, worker
//!   panics, worker deaths, and shutdown (the failure model is documented
//!   on [`engine`]).
//! * [`RetryPolicy`] — the recommended client loop for `Saturated`:
//!   bounded attempts with decorrelated-jitter backoff.
//! * [`FaultPlan`] — deterministic, seedable fault injection (worker
//!   panics, deaths, delays, queue-full windows) keyed on the engine's own
//!   sequence numbers, for chaos tests that reproduce exactly.
//! * [`harness`] — open-loop load generation (arrivals on a fixed
//!   schedule, independent of completions, the methodology that exposes
//!   coordinated omission) and closed-loop saturation runs, summarized as
//!   p50/p90/p99/p999 latency and QPS, with typed-error outcomes counted
//!   honestly.
//!
//! The executor dispatches any [`rknn_rdt::algorithm::RknnAlgorithm`]
//! unchanged, so RDT, RDT+ and all five baselines serve through the same
//! engine they batch through — and the equivalence suite can hold the
//! concurrent path byte-identical to the sequential driver.

pub mod advance;
pub mod engine;
pub mod fault;
pub mod harness;
pub mod retry;
pub mod supervisor;

pub use advance::{advance_snapshot, AdvanceError, AdvanceReport, ChurnOp};
pub use engine::{
    Engine, EngineConfig, EngineStats, Priority, QueryError, QueryInput, QueryRequest,
    QueryResponse, Snapshot, Ticket,
};
pub use fault::{Fault, FaultCounts, FaultPlan};
pub use harness::{
    latency_summary, run_closed_loop, run_open_loop, ClosedLoopReport, LatencySummary,
    OpenLoopConfig, OpenLoopReport,
};
pub use retry::RetryPolicy;
pub use supervisor::{PoisonKey, PoisonLog, PoisonPill};
