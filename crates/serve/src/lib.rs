//! The long-lived concurrent serving layer: the piece that turns the
//! batch-offline reproduction into an engine a live system could run.
//!
//! Everything recorded before this crate existed was one-shot: build an
//! index, answer a query list across scoped threads, exit. A serving
//! system has a different shape — queries arrive continuously at their own
//! rate, the catalog churns underneath them, and the numbers that matter
//! are tail latencies under load, not batch wall-clock. This crate
//! provides that shape without touching the algorithms themselves:
//!
//! * [`Snapshot`] — an immutable `(epoch, index, prepared algorithm)`
//!   triple. Queries only ever see one snapshot; churn produces a *new*
//!   snapshot built off to the side (for RDT, carrying the warm `d_k`
//!   cache forward via [`advance_snapshot`] instead of rebuilding it).
//! * [`Engine`] — N worker threads, each owning its scratch, fed by
//!   per-worker bounded queues with work stealing. Submission applies
//!   backpressure ([`SubmitError::Saturated`]) instead of growing without
//!   bound; [`Engine::publish`] swaps the active snapshot epoch-style —
//!   readers never block, in-flight queries finish against the epoch they
//!   started with.
//! * [`harness`] — open-loop load generation (arrivals on a fixed
//!   schedule, independent of completions, the methodology that exposes
//!   coordinated omission) and closed-loop saturation runs, summarized as
//!   p50/p90/p99/p999 latency and QPS.
//!
//! The executor dispatches any [`rknn_rdt::algorithm::RknnAlgorithm`]
//! unchanged, so RDT, RDT+ and all five baselines serve through the same
//! engine they batch through — and the equivalence suite can hold the
//! concurrent path byte-identical to the sequential driver.

pub mod advance;
pub mod engine;
pub mod harness;

pub use advance::{advance_snapshot, AdvanceReport, ChurnOp};
pub use engine::{Engine, EngineConfig, EngineStats, QueryResponse, Snapshot, SubmitError, Ticket};
pub use harness::{
    latency_summary, run_closed_loop, run_open_loop, ClosedLoopReport, LatencySummary,
    OpenLoopConfig, OpenLoopReport,
};
