//! Bounded retry with decorrelated-jitter backoff for saturated submits.
//!
//! [`QueryError::Saturated`] is the engine's backpressure signal: the
//! caller should back off and try again, not spin. [`RetryPolicy`] is the
//! recommended client loop — bounded attempts, sleeps drawn by the
//! *decorrelated jitter* rule (`sleep = min(cap, uniform(base, 3·prev))`),
//! which spreads concurrent retriers apart instead of letting them
//! resubmit in lockstep the way fixed exponential backoff does. Every
//! other error is terminal for the attempt loop: [`QueryError::Closed`]
//! means the engine will never accept again, and validation errors will
//! fail identically on every retry.
//!
//! The jitter stream is seeded, so a retry schedule — like everything else
//! in the chaos harness — reproduces exactly.

use crate::engine::{Engine, QueryError, QueryRequest, Ticket};
use rknn_core::Metric;
use rknn_index::KnnIndex;
use rknn_rdt::algorithm::RknnAlgorithm;
use std::time::Duration;

/// Bounded-retry policy for [`Engine::submit`] under saturation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submit attempts (the first try included). At least 1.
    pub max_attempts: u32,
    /// Lower bound of every backoff sleep.
    pub base: Duration,
    /// Upper bound of every backoff sleep.
    pub cap: Duration,
    /// Seed for the jitter stream, so retry schedules are reproducible.
    pub seed: u64,
}

impl RetryPolicy {
    /// A policy with serving-scale defaults: `attempts` tries, sleeps
    /// between 100µs and 10ms.
    pub fn new(attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: attempts.max(1),
            base: Duration::from_micros(100),
            cap: Duration::from_millis(10),
            seed: 0x5EED,
        }
    }

    /// Overrides the backoff bounds.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.base = base;
        self.cap = cap.max(base);
        self
    }

    /// Overrides the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The deterministic sleep schedule this policy would follow through
    /// `max_attempts - 1` backoffs — exposed for tests and for callers that
    /// want to pace something else with the same rule.
    pub fn backoff_schedule(&self) -> Vec<Duration> {
        let mut state = self.seed.wrapping_mul(2).wrapping_add(1);
        let mut prev = self.base;
        (1..self.max_attempts)
            .map(|_| {
                let next = decorrelated(&mut state, self.base, prev, self.cap);
                prev = next;
                next
            })
            .collect()
    }

    /// Submits `request`, retrying only on [`QueryError::Saturated`] with
    /// decorrelated-jitter sleeps, up to [`max_attempts`](Self::max_attempts)
    /// tries. Returns the first non-saturated outcome, or the last
    /// `Saturated` error once the budget is spent. The retry count actually
    /// used is reported through the second tuple element.
    pub fn submit<M, I, A>(
        &self,
        engine: &Engine<M, I, A>,
        request: QueryRequest,
    ) -> (Result<Ticket, QueryError>, u32)
    where
        M: Metric + 'static,
        I: KnnIndex<M> + 'static,
        A: RknnAlgorithm<M, I> + Send + Sync + 'static,
    {
        let mut state = self.seed.wrapping_mul(2).wrapping_add(1);
        let mut prev = self.base;
        let mut retries = 0;
        loop {
            match engine.submit(request.clone()) {
                Err(QueryError::Saturated { .. }) if retries + 1 < self.max_attempts.max(1) => {
                    let sleep = decorrelated(&mut state, self.base, prev, self.cap);
                    prev = sleep;
                    retries += 1;
                    std::thread::sleep(sleep);
                }
                outcome => return (outcome, retries),
            }
        }
    }
}

/// One decorrelated-jitter draw: uniform in `[base, 3·prev]`, capped.
fn decorrelated(state: &mut u64, base: Duration, prev: Duration, cap: Duration) -> Duration {
    // xorshift64* — the same self-contained generator the fault plan uses.
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
    let base_us = base.as_micros().max(1) as u64;
    let hi_us = (prev.as_micros() as u64).saturating_mul(3).max(base_us + 1);
    let span = hi_us - base_us;
    let drawn = base_us + (r % (span + 1));
    Duration::from_micros(drawn).min(cap).max(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_bounded_and_jittered() {
        let policy = RetryPolicy::new(8)
            .with_backoff(Duration::from_micros(200), Duration::from_millis(5))
            .with_seed(99);
        let a = policy.backoff_schedule();
        let b = policy.backoff_schedule();
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 7, "attempts - 1 sleeps");
        for sleep in &a {
            assert!(*sleep >= policy.base && *sleep <= policy.cap);
        }
        // Decorrelated jitter must actually vary, not step a fixed ladder.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
        let c = policy.with_seed(100).backoff_schedule();
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn single_attempt_policy_never_sleeps() {
        assert!(RetryPolicy::new(1).backoff_schedule().is_empty());
        assert_eq!(RetryPolicy::new(0).max_attempts, 1, "floor at one attempt");
    }
}
