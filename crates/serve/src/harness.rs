//! Load generation and latency summarization for the serving engine.
//!
//! The open-loop driver is the honest one: arrival times are fixed in
//! advance at the target rate (`t_i = i / λ` from the run's start) and a
//! query is submitted at its scheduled instant *regardless of whether
//! earlier queries finished* — so a slow engine accumulates queue delay
//! that the latency numbers actually show (a closed-loop driver would
//! silently stall the arrival process instead: coordinated omission).
//! Latency is measured from the scheduled arrival, not from the submit
//! call, so dispatcher lag cannot hide service-side queueing either — the
//! observed lag is reported separately as an honesty field.
//!
//! Tickets resolving with a typed error (deadline, shed, internal) are
//! counted honestly in the report rather than folded into completions or
//! silently dropped — under fault injection the identity
//! `offered == completed + rejected + deadline_exceeded + failed` is what
//! the chaos gate checks.
//!
//! The closed-loop driver ([`run_closed_loop`]) is the throughput probe:
//! it submits as fast as backpressure admits and reports saturated QPS,
//! which is what the thread-scaling curve is built from.

use crate::engine::{Engine, QueryError, QueryRequest, Ticket};
use rknn_core::{Metric, PointId};
use rknn_index::KnnIndex;
use rknn_rdt::algorithm::RknnAlgorithm;
use std::time::{Duration, Instant};

/// Open-loop run parameters.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Target arrival rate, queries per second. Must be positive.
    pub rate_qps: f64,
    /// Total queries to offer.
    pub total: usize,
    /// Per-query deadline, measured from submission. `None` disables
    /// deadlines (every accepted query runs to completion).
    pub deadline: Option<Duration>,
}

/// Nearest-rank percentile summary of a latency sample, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// 99.9th percentile.
    pub p999_ms: f64,
    /// Maximum.
    pub max_ms: f64,
}

/// Nearest-rank percentile of an **ascending-sorted** sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Summarizes a latency sample (milliseconds); `None` when the sample is
/// empty — absent data stays absent instead of becoming NaN.
pub fn latency_summary(samples: &[f64]) -> Option<LatencySummary> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Some(LatencySummary {
        count: sorted.len(),
        mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50_ms: percentile(&sorted, 0.50),
        p90_ms: percentile(&sorted, 0.90),
        p99_ms: percentile(&sorted, 0.99),
        p999_ms: percentile(&sorted, 0.999),
        max_ms: *sorted.last().expect("non-empty"),
    })
}

/// Outcome of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Queries offered (scheduled arrivals).
    pub offered: usize,
    /// Queries completed with an answer.
    pub completed: usize,
    /// Queries rejected at submit by backpressure (or the engine closing).
    pub rejected: usize,
    /// Accepted queries shed for missing their deadline.
    pub deadline_exceeded: usize,
    /// Accepted queries resolving with any other typed error (shed,
    /// cancelled, internal, closed-swept).
    pub failed: usize,
    /// Wall-clock span from first scheduled arrival to last collection.
    pub elapsed: Duration,
    /// Target arrival rate the schedule was built from.
    pub target_qps: f64,
    /// Completed queries per second of elapsed time; `None` when nothing
    /// completed or the span was too short to divide by.
    pub achieved_qps: Option<f64>,
    /// Open-loop latency (scheduled arrival → completion).
    pub latency: Option<LatencySummary>,
    /// Service time alone (dequeue → completion).
    pub service: Option<LatencySummary>,
    /// Queue wait alone (accept → dequeue).
    pub queue_wait: Option<LatencySummary>,
    /// Worst dispatcher lag behind the arrival schedule — honesty field:
    /// large values mean the load generator, not the engine, was the
    /// bottleneck.
    pub max_submit_lag_ms: f64,
    /// Distinct epochs observed across completions, ascending.
    pub epochs: Vec<u64>,
    /// p99 over the first 100 completions in arrival order — the
    /// cold-start tail a fresh snapshot shows before its `d_k` cache
    /// warms. `None` when fewer than 100 queries completed.
    pub first_100_p99_ms: Option<f64>,
}

/// Drives `engine` open-loop at `cfg.rate_qps`, cycling through `queries`,
/// then waits for every accepted ticket.
///
/// Panics if `cfg.rate_qps` is not positive or `queries` is empty.
pub fn run_open_loop<M, I, A>(
    engine: &Engine<M, I, A>,
    queries: &[PointId],
    cfg: &OpenLoopConfig,
) -> OpenLoopReport
where
    M: Metric + 'static,
    I: KnnIndex<M> + 'static,
    A: RknnAlgorithm<M, I> + Send + Sync + 'static,
{
    assert!(cfg.rate_qps > 0.0, "open-loop rate must be positive");
    assert!(!queries.is_empty(), "open-loop needs at least one query");
    let start = Instant::now();
    let mut pending: Vec<(Instant, Ticket)> = Vec::with_capacity(cfg.total);
    let mut rejected = 0usize;
    let mut max_lag = Duration::ZERO;
    for i in 0..cfg.total {
        let scheduled = start + Duration::from_secs_f64(i as f64 / cfg.rate_qps);
        let now = Instant::now();
        if now < scheduled {
            std::thread::sleep(scheduled - now);
        } else {
            max_lag = max_lag.max(now - scheduled);
        }
        let mut request = QueryRequest::point(queries[i % queries.len()]);
        if let Some(deadline) = cfg.deadline {
            request = request.with_timeout(deadline);
        }
        match engine.submit(request) {
            Ok(ticket) => pending.push((scheduled, ticket)),
            Err(QueryError::Saturated { .. }) => rejected += 1,
            Err(QueryError::Closed) => {
                rejected += cfg.total - i;
                break;
            }
            Err(other) => panic!("open-loop submit rejected unexpectedly: {other}"),
        }
    }

    let mut latency_ms = Vec::with_capacity(pending.len());
    let mut service_ms = Vec::with_capacity(pending.len());
    let mut queue_ms = Vec::with_capacity(pending.len());
    let mut deadline_exceeded = 0usize;
    let mut failed = 0usize;
    let mut epochs: Vec<u64> = Vec::new();
    for (scheduled, ticket) in pending {
        let response = match ticket.wait() {
            Ok(response) => response,
            Err(QueryError::DeadlineExceeded { .. }) => {
                deadline_exceeded += 1;
                continue;
            }
            Err(_) => {
                failed += 1;
                continue;
            }
        };
        latency_ms.push(
            response
                .finished_at
                .saturating_duration_since(scheduled)
                .as_secs_f64()
                * 1e3,
        );
        service_ms.push(response.service().as_secs_f64() * 1e3);
        queue_ms.push(response.queue_wait().as_secs_f64() * 1e3);
        if let Err(at) = epochs.binary_search(&response.epoch) {
            epochs.insert(at, response.epoch);
        }
    }
    let elapsed = start.elapsed();
    let completed = latency_ms.len();
    let achieved_qps = (completed > 0 && elapsed > Duration::ZERO)
        .then(|| completed as f64 / elapsed.as_secs_f64());
    let first_100_p99_ms = (completed >= 100).then(|| {
        let mut first: Vec<f64> = latency_ms[..100].to_vec();
        first.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        percentile(&first, 0.99)
    });
    OpenLoopReport {
        offered: cfg.total,
        completed,
        rejected,
        deadline_exceeded,
        failed,
        elapsed,
        target_qps: cfg.rate_qps,
        achieved_qps,
        latency: latency_summary(&latency_ms),
        service: latency_summary(&service_ms),
        queue_wait: latency_summary(&queue_ms),
        max_submit_lag_ms: max_lag.as_secs_f64() * 1e3,
        epochs,
        first_100_p99_ms,
    }
}

/// Outcome of one closed-loop (saturation) run.
#[derive(Debug, Clone)]
pub struct ClosedLoopReport {
    /// Queries completed with an answer.
    pub completed: usize,
    /// Submit attempts that hit backpressure and were retried.
    pub retries: usize,
    /// Accepted queries resolving with a typed error instead of an
    /// answer (only possible under fault injection or shutdown).
    pub failed: usize,
    /// Wall-clock span of the run.
    pub elapsed: Duration,
    /// Saturated throughput; `None` when nothing completed or the span
    /// was too short to divide by.
    pub qps: Option<f64>,
    /// Service-time summary.
    pub service: Option<LatencySummary>,
}

/// Pushes `total` queries through `engine` as fast as backpressure admits
/// (retrying saturated submits after yielding), then waits for all of
/// them — the saturated-throughput probe behind the thread-scaling curve.
/// An engine that closes mid-run stops the arrival loop instead of
/// panicking; every accepted ticket is still collected.
pub fn run_closed_loop<M, I, A>(
    engine: &Engine<M, I, A>,
    queries: &[PointId],
    total: usize,
) -> ClosedLoopReport
where
    M: Metric + 'static,
    I: KnnIndex<M> + 'static,
    A: RknnAlgorithm<M, I> + Send + Sync + 'static,
{
    assert!(!queries.is_empty(), "closed-loop needs at least one query");
    let start = Instant::now();
    let mut pending: Vec<Ticket> = Vec::with_capacity(total);
    let mut retries = 0usize;
    'offer: for i in 0..total {
        loop {
            match engine.submit(queries[i % queries.len()]) {
                Ok(ticket) => {
                    pending.push(ticket);
                    break;
                }
                Err(QueryError::Saturated { .. }) => {
                    retries += 1;
                    std::thread::yield_now();
                }
                Err(QueryError::Closed) => break 'offer,
                Err(other) => panic!("closed-loop submit rejected unexpectedly: {other}"),
            }
        }
    }
    let mut service_ms = Vec::with_capacity(pending.len());
    let mut failed = 0usize;
    for ticket in pending {
        match ticket.wait() {
            Ok(response) => service_ms.push(response.service().as_secs_f64() * 1e3),
            Err(_) => failed += 1,
        }
    }
    let elapsed = start.elapsed();
    let completed = service_ms.len();
    let qps = (completed > 0 && elapsed > Duration::ZERO)
        .then(|| completed as f64 / elapsed.as_secs_f64());
    ClosedLoopReport {
        completed,
        retries,
        failed,
        elapsed,
        qps,
        service: latency_summary(&service_ms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, Snapshot};
    use rknn_core::Euclidean;
    use rknn_index::LinearScan;
    use rknn_rdt::algorithm::RdtAlgorithm;
    use rknn_rdt::RdtParams;

    fn engine(
        n: usize,
        seed: u64,
        workers: usize,
    ) -> Engine<Euclidean, LinearScan<Euclidean>, RdtAlgorithm> {
        let ds = rknn_data::gaussian_blobs(n, 4, 3, 0.4, seed).into_shared();
        let idx = LinearScan::build(ds, Euclidean);
        Engine::new(
            Snapshot::prepare(0, idx, RdtAlgorithm::new(RdtParams::new(4, 4.0))),
            EngineConfig {
                workers,
                queue_capacity: 64,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 0.999), 100.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
        assert_eq!(latency_summary(&[]), None);
        let one = latency_summary(&[3.0]).unwrap();
        assert_eq!((one.p50_ms, one.p999_ms, one.count), (3.0, 3.0, 1));
    }

    #[test]
    fn open_loop_completes_the_offered_load() {
        let eng = engine(200, 905, 2);
        let queries: Vec<usize> = (0..200).collect();
        let report = run_open_loop(
            &eng,
            &queries,
            &OpenLoopConfig {
                rate_qps: 2000.0,
                total: 150,
                deadline: None,
            },
        );
        assert_eq!(report.offered, 150);
        assert_eq!(report.completed + report.rejected, 150);
        assert_eq!((report.deadline_exceeded, report.failed), (0, 0));
        assert!(report.completed > 0);
        assert!(report.achieved_qps.unwrap() > 0.0);
        let lat = report.latency.unwrap();
        assert!(lat.p50_ms <= lat.p99_ms && lat.p99_ms <= lat.p999_ms);
        assert_eq!(report.epochs, vec![0]);
        if report.completed >= 100 {
            assert!(report.first_100_p99_ms.unwrap() > 0.0);
        }
    }

    #[test]
    fn closed_loop_reports_saturated_throughput() {
        let eng = engine(150, 906, 2);
        let queries: Vec<usize> = (0..150).collect();
        let report = run_closed_loop(&eng, &queries, 300);
        assert_eq!(report.completed, 300);
        assert_eq!(report.failed, 0);
        assert!(report.qps.unwrap() > 0.0);
        assert!(report.service.unwrap().count == 300);
    }
}
