//! Calibration probe: prints Table 1-style estimator outputs for candidate
//! generator parameterizations. Used to tune the paper-like generators; kept
//! as a maintenance tool.

use rknn_core::Euclidean;
use rknn_data::generic::{mixed_manifold, MixComponent};
use rknn_lid::{GpEstimator, HillEstimator, IdEstimator, TakensEstimator};

fn report(label: &str, ds: rknn_core::Dataset) {
    let ds = ds.into_shared();
    let hill = HillEstimator {
        neighbors: 60,
        ..HillEstimator::default()
    };
    let mle = hill.estimate(&ds, &Euclidean).id;
    let gp = GpEstimator::new().estimate(&ds, &Euclidean).id;
    let tak = TakensEstimator::new().estimate(&ds, &Euclidean).id;
    println!("{label:50} MLE {mle:6.2}  GP {gp:6.2}  Takens {tak:6.2}");
}

fn main() {
    let n = 3000;
    // ALOI target: MLE ≈ 7.7, GP ≈ 2.0, Takens ≈ 2.2.
    for (dense_scale, hi_dim, dense_frac) in
        [(0.1f64, 12usize, 0.45f64), (0.1, 13, 0.45), (0.15, 14, 0.5)]
    {
        report(
            &format!("aloi mix scale={dense_scale} hi={hi_dim} frac={dense_frac}"),
            mixed_manifold(
                n,
                641,
                &[
                    MixComponent {
                        weight: dense_frac,
                        intrinsic_dim: 2,
                        clusters: 3,
                        scale: dense_scale,
                        noise: 0.0,
                        curvature: 0.4,
                    },
                    MixComponent {
                        weight: 1.0 - dense_frac,
                        intrinsic_dim: hi_dim,
                        clusters: 5,
                        scale: 1.0,
                        noise: 0.1,
                        curvature: 0.5,
                    },
                ],
                28.0,
                3,
            ),
        );
    }
    // MNIST target: MLE ≈ 12, GP ≈ 4.4, Takens ≈ 4.7.
    for (dense_scale, hi_dim, dense_frac) in [
        (0.12f64, 18usize, 0.45f64),
        (0.12, 20, 0.45),
        (0.15, 22, 0.5),
    ] {
        report(
            &format!("mnist mix scale={dense_scale} hi={hi_dim} frac={dense_frac}"),
            mixed_manifold(
                n,
                784,
                &[
                    MixComponent {
                        weight: dense_frac,
                        intrinsic_dim: 4,
                        clusters: 3,
                        scale: dense_scale,
                        noise: 0.0,
                        curvature: 0.5,
                    },
                    MixComponent {
                        weight: 1.0 - dense_frac,
                        intrinsic_dim: hi_dim,
                        clusters: 5,
                        scale: 1.0,
                        noise: 0.15,
                        curvature: 0.8,
                    },
                ],
                45.0,
                4,
            ),
        );
    }
}
