//! Generic point-cloud generators: uniform cubes, Gaussian mixtures, and
//! low-dimensional manifolds embedded in high-dimensional ambient spaces.

use crate::rng::Normal;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rknn_core::{Dataset, DatasetBuilder};

/// `n` points uniform in `[0, 1]^dim`.
pub fn uniform_cube(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::with_capacity(dim, n);
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        for v in row.iter_mut() {
            *v = rng.random();
        }
        b.push(&row).expect("generated coordinates are finite");
    }
    b.build()
}

/// `n` points in `clusters` isotropic Gaussian blobs with per-axis standard
/// deviation `sigma`; centers uniform in `[0, 10]^dim`.
pub fn gaussian_blobs(n: usize, dim: usize, clusters: usize, sigma: f64, seed: u64) -> Dataset {
    assert!(clusters >= 1, "need at least one cluster");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut normal = Normal::new();
    let centers: Vec<Vec<f64>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.random::<f64>() * 10.0).collect())
        .collect();
    let mut b = DatasetBuilder::with_capacity(dim, n);
    let mut row = vec![0.0; dim];
    for i in 0..n {
        let c = &centers[i % clusters];
        for (j, v) in row.iter_mut().enumerate() {
            *v = c[j] + sigma * normal.sample(&mut rng);
        }
        b.push(&row).expect("generated coordinates are finite");
    }
    b.build()
}

/// Specification of an embedded-manifold dataset.
///
/// Points are drawn on `clusters` independently oriented `intrinsic_dim`-
/// dimensional (optionally curved) patches embedded in
/// `ambient_dim`-dimensional space, plus isotropic ambient noise. The
/// intrinsic dimensionality measured by the estimators of `rknn-lid` tracks
/// `intrinsic_dim` as long as `noise` stays below the within-patch scale —
/// and deliberately *exceeds* it locally when `noise` is raised, which is
/// how the MNIST-like generator reproduces Table 1's MLE-vs-CD gap.
#[derive(Debug, Clone, Copy)]
pub struct ManifoldSpec {
    /// Number of points.
    pub n: usize,
    /// Representational (ambient) dimension `m`.
    pub ambient_dim: usize,
    /// Manifold dimension `d ≤ m`.
    pub intrinsic_dim: usize,
    /// Number of independently oriented patches.
    pub clusters: usize,
    /// Isotropic ambient noise amplitude (per-coordinate σ before the
    /// `1/√m` normalization that keeps the noise *vector length* ≈ this
    /// value).
    pub noise: f64,
    /// Curvature strength: 0 gives flat (affine) patches.
    pub curvature: f64,
    /// Spread of patch centers.
    pub center_spread: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ManifoldSpec {
    /// A flat single-patch manifold with light noise.
    pub fn flat(n: usize, ambient_dim: usize, intrinsic_dim: usize, seed: u64) -> Self {
        ManifoldSpec {
            n,
            ambient_dim,
            intrinsic_dim,
            clusters: 1,
            noise: 0.0,
            curvature: 0.0,
            center_spread: 0.0,
            seed,
        }
    }
}

/// Gram–Schmidt orthonormalization of `d` random Gaussian vectors in `R^m`.
fn random_orthonormal(
    rng: &mut SmallRng,
    normal: &mut Normal,
    m: usize,
    d: usize,
) -> Vec<Vec<f64>> {
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(d);
    while basis.len() < d {
        let mut v = vec![0.0; m];
        normal.fill(rng, &mut v);
        for b in &basis {
            let dot: f64 = v.iter().zip(b).map(|(a, c)| a * c).sum();
            for (vi, bi) in v.iter_mut().zip(b) {
                *vi -= dot * bi;
            }
        }
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-9 {
            for vi in v.iter_mut() {
                *vi /= norm;
            }
            basis.push(v);
        }
    }
    basis
}

/// Generates an embedded-manifold dataset per `spec`.
pub fn embedded_manifold(spec: ManifoldSpec) -> Dataset {
    assert!(spec.intrinsic_dim >= 1 && spec.intrinsic_dim <= spec.ambient_dim);
    assert!(spec.clusters >= 1);
    let m = spec.ambient_dim;
    let d = spec.intrinsic_dim;
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut normal = Normal::new();
    // Per-patch geometry: center, tangent basis, curvature basis, and
    // curvature phase offsets.
    struct Patch {
        center: Vec<f64>,
        tangent: Vec<Vec<f64>>,
        curved: Vec<Vec<f64>>,
        phases: Vec<f64>,
    }
    let patches: Vec<Patch> = (0..spec.clusters)
        .map(|_| {
            let mut center = vec![0.0; m];
            normal.fill(&mut rng, &mut center);
            for c in center.iter_mut() {
                *c *= spec.center_spread / (m as f64).sqrt();
            }
            let all = random_orthonormal(&mut rng, &mut normal, m, (2 * d).min(m));
            let tangent = all[..d].to_vec();
            let curved = all[d..].to_vec();
            let phases = (0..d)
                .map(|_| rng.random::<f64>() * std::f64::consts::TAU)
                .collect();
            Patch {
                center,
                tangent,
                curved,
                phases,
            }
        })
        .collect();
    let noise_scale = spec.noise / (m as f64).sqrt();
    let mut b = DatasetBuilder::with_capacity(m, spec.n);
    let mut row = vec![0.0; m];
    let mut z = vec![0.0; d];
    for i in 0..spec.n {
        let patch = &patches[i % spec.clusters];
        normal.fill(&mut rng, &mut z);
        row.copy_from_slice(&patch.center);
        // Linear part: x += Σ_j z_j · tangent_j.
        for (j, t) in patch.tangent.iter().enumerate() {
            for (xi, ti) in row.iter_mut().zip(t) {
                *xi += z[j] * ti;
            }
        }
        // Curvature: bend each tangent direction into a distinct normal
        // direction, keeping the patch a d-dimensional manifold.
        if spec.curvature > 0.0 {
            for (j, c) in patch.curved.iter().enumerate() {
                let bend = spec.curvature * (z[j % d] + patch.phases[j % d]).sin();
                for (xi, ci) in row.iter_mut().zip(c) {
                    *xi += bend * ci;
                }
            }
        }
        if spec.noise > 0.0 {
            for xi in row.iter_mut() {
                *xi += noise_scale * normal.sample(&mut rng);
            }
        }
        b.push(&row).expect("generated coordinates are finite");
    }
    b.build()
}

/// One component of a [`mixed_manifold`] dataset.
#[derive(Debug, Clone, Copy)]
pub struct MixComponent {
    /// Relative weight (fraction of points, normalized over components).
    pub weight: f64,
    /// Manifold dimension of this component's patches.
    pub intrinsic_dim: usize,
    /// Number of patches.
    pub clusters: usize,
    /// Within-patch scale (standard deviation of the patch coordinates).
    /// Small scales make a component *dense*, letting it dominate the
    /// smallest pairwise distances — and thereby global correlation-
    /// dimension estimates — without dominating per-point averages.
    pub scale: f64,
    /// Ambient noise amplitude for this component.
    pub noise: f64,
    /// Curvature strength.
    pub curvature: f64,
}

/// A mixture of embedded manifolds of *different* intrinsic dimensions and
/// densities in a common ambient space.
///
/// This reproduces the estimator disagreement of Table 1 (ALOI: MLE 7.71 vs
/// GP 1.98): Grassberger–Procaccia fits the correlation integral over the
/// smallest pairwise distances, which come from the densest (here:
/// low-dimensional, small-scale) component, while the averaged Hill/MLE
/// estimate weights every sampled point equally and therefore tracks the
/// mixture average.
pub fn mixed_manifold(
    n: usize,
    ambient_dim: usize,
    components: &[MixComponent],
    center_spread: f64,
    seed: u64,
) -> Dataset {
    assert!(!components.is_empty(), "need at least one component");
    let total_weight: f64 = components.iter().map(|c| c.weight).sum();
    assert!(total_weight > 0.0, "weights must be positive");
    let mut remaining = n;
    let mut parts: Vec<Dataset> = Vec::with_capacity(components.len());
    for (i, comp) in components.iter().enumerate() {
        let share = if i + 1 == components.len() {
            remaining
        } else {
            ((n as f64) * comp.weight / total_weight).round() as usize
        }
        .min(remaining);
        remaining -= share;
        if share == 0 {
            continue;
        }
        let mut part = embedded_manifold(ManifoldSpec {
            n: share,
            ambient_dim,
            intrinsic_dim: comp.intrinsic_dim,
            clusters: comp.clusters.min(share.max(1)),
            noise: comp.noise,
            curvature: comp.curvature,
            center_spread,
            seed: seed.wrapping_add(0x9e37 * (i as u64 + 1)),
        });
        // Apply the component scale (embedded_manifold draws z ~ N(0, 1)).
        if (comp.scale - 1.0).abs() > 1e-12 {
            part = scale_about_patchwise(&part, comp.scale, comp.clusters.min(share.max(1)));
        }
        parts.push(part);
    }
    // Interleave components so that "cluster by stride" structure is not
    // trivially recoverable from ids.
    let dim = ambient_dim;
    let mut b = DatasetBuilder::with_capacity(dim, n);
    let mut cursors = vec![0usize; parts.len()];
    let mut emitted = 0usize;
    while emitted < n {
        for (pi, part) in parts.iter().enumerate() {
            if cursors[pi] < part.len() {
                b.push(part.point(cursors[pi])).expect("finite");
                cursors[pi] += 1;
                emitted += 1;
            }
        }
    }
    b.build()
}

/// Shrinks every patch about its own centroid by `scale`. Patches are the
/// stride-`clusters` id classes produced by [`embedded_manifold`].
fn scale_about_patchwise(ds: &Dataset, scale: f64, clusters: usize) -> Dataset {
    let m = ds.dim();
    let n = ds.len();
    let mut centroids = vec![vec![0.0; m]; clusters];
    let mut counts = vec![0usize; clusters];
    for (i, p) in ds.iter() {
        let c = i % clusters;
        counts[c] += 1;
        for (a, x) in centroids[c].iter_mut().zip(p) {
            *a += x;
        }
    }
    for (c, count) in counts.iter().enumerate() {
        if *count > 0 {
            for a in centroids[c].iter_mut() {
                *a /= *count as f64;
            }
        }
    }
    let mut b = DatasetBuilder::with_capacity(m, n);
    let mut row = vec![0.0; m];
    for (i, p) in ds.iter() {
        let c = i % clusters;
        for j in 0..m {
            row[j] = centroids[c][j] + scale * (p[j] - centroids[c][j]);
        }
        b.push(&row).expect("finite");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::{Euclidean, Metric};
    use rknn_lid::{HillEstimator, IdEstimator};

    #[test]
    fn uniform_cube_shape_and_bounds() {
        let ds = uniform_cube(500, 3, 1);
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.dim(), 3);
        for (_, p) in ds.iter() {
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(uniform_cube(50, 2, 9), uniform_cube(50, 2, 9));
        assert_ne!(uniform_cube(50, 2, 9), uniform_cube(50, 2, 10));
        let spec = ManifoldSpec::flat(40, 8, 2, 3);
        assert_eq!(embedded_manifold(spec), embedded_manifold(spec));
    }

    #[test]
    fn blobs_cluster_tightly() {
        let ds = gaussian_blobs(300, 4, 3, 0.05, 2);
        assert_eq!(ds.len(), 300);
        // Points of the same cluster (stride 3) are close.
        let d = Euclidean.dist(ds.point(0), ds.point(3));
        assert!(d < 1.0, "within-cluster distance {d}");
    }

    #[test]
    fn flat_manifold_has_intrinsic_dimension() {
        for d in [2usize, 4] {
            let ds = embedded_manifold(ManifoldSpec::flat(1200, 32, d, 7)).into_shared();
            let est = HillEstimator {
                neighbors: 50,
                ..HillEstimator::default()
            };
            let got = est.estimate(&ds, &Euclidean).id;
            assert!(
                (got - d as f64).abs() < 0.35 * d as f64 + 0.5,
                "intrinsic {d}, estimated {got}"
            );
        }
    }

    #[test]
    fn curvature_preserves_intrinsic_dimension() {
        let spec = ManifoldSpec {
            curvature: 0.8,
            ..ManifoldSpec::flat(1200, 32, 3, 8)
        };
        let ds = embedded_manifold(spec).into_shared();
        let est = HillEstimator {
            neighbors: 50,
            ..HillEstimator::default()
        };
        let got = est.estimate(&ds, &Euclidean).id;
        assert!((got - 3.0).abs() < 1.5, "estimated {got}");
    }

    #[test]
    fn noise_inflates_local_estimates() {
        let quiet = embedded_manifold(ManifoldSpec {
            noise: 0.0,
            ..ManifoldSpec::flat(1000, 24, 2, 9)
        })
        .into_shared();
        let noisy = embedded_manifold(ManifoldSpec {
            noise: 0.4,
            ..ManifoldSpec::flat(1000, 24, 2, 9)
        })
        .into_shared();
        let est = HillEstimator {
            neighbors: 40,
            ..HillEstimator::default()
        };
        let a = est.estimate(&quiet, &Euclidean).id;
        let b = est.estimate(&noisy, &Euclidean).id;
        assert!(b > a + 0.5, "noise must inflate local ID: {a} vs {b}");
    }

    #[test]
    fn multi_cluster_manifolds_stay_separated() {
        let spec = ManifoldSpec {
            clusters: 4,
            center_spread: 100.0,
            ..ManifoldSpec::flat(400, 16, 2, 10)
        };
        let ds = embedded_manifold(spec);
        // Same-cluster pair (stride 4) much closer than cross-cluster pair.
        let same = Euclidean.dist(ds.point(0), ds.point(4));
        let cross = Euclidean.dist(ds.point(0), ds.point(1));
        assert!(same < cross, "same {same} cross {cross}");
    }
}
