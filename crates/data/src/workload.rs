//! Reproducible query workloads.
//!
//! The paper's experiments draw "100 randomly chosen points to serve as
//! query objects" from each dataset (§7.1); this module provides the seeded
//! equivalent.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rknn_core::PointId;

/// `count` distinct query point ids drawn uniformly from `0..n`,
/// deterministic per seed. Returns fewer when `count > n`.
pub fn sample_queries(n: usize, count: usize, seed: u64) -> Vec<PointId> {
    let mut ids: Vec<PointId> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    ids.truncate(count.min(n));
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_distinct_and_in_range() {
        let q = sample_queries(1000, 100, 7);
        assert_eq!(q.len(), 100);
        let set: std::collections::HashSet<_> = q.iter().collect();
        assert_eq!(set.len(), 100);
        assert!(q.iter().all(|&id| id < 1000));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(sample_queries(500, 50, 1), sample_queries(500, 50, 1));
        assert_ne!(sample_queries(500, 50, 1), sample_queries(500, 50, 2));
    }

    #[test]
    fn truncates_when_count_exceeds_n() {
        assert_eq!(sample_queries(5, 100, 3).len(), 5);
        assert!(sample_queries(0, 10, 4).is_empty());
    }
}
