//! Generators reproducing the structure of the paper's evaluation datasets.
//!
//! Calibration targets come from Table 1 of the paper (intrinsic-dimension
//! estimates next to representational dimension D):
//!
//! | dataset  |    D | MLE   | GP   | Takens | structure reproduced            |
//! |----------|-----:|------:|-----:|-------:|---------------------------------|
//! | Sequoia  |    2 |  1.84 | 1.79 |  1.78  | 2-d clustered geography         |
//! | FCT      |   53 |  3.54 | 3.87 |  3.65  | ≈4-d manifold, standardized     |
//! | ALOI     |  641 |  7.71 | 1.98 |  2.16  | ≈2-d curved manifold + noise    |
//! | MNIST    |  784 | 12.15 | 4.39 |  4.68  | ≈5-d manifold + heavy noise     |
//! | Imagenet | 4096 |   —   |  —   |   —    | many-cluster ≈12-d manifold     |
//!
//! The ALOI and MNIST rows show the signature this module must reproduce:
//! local (MLE) estimates well above the global correlation dimension,
//! caused by ambient noise at neighborhood scale. The crate tests check the
//! signatures with the actual estimators.

use crate::generic::{embedded_manifold, mixed_manifold, ManifoldSpec, MixComponent};
use crate::rng::Normal;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rknn_core::{Dataset, DatasetBuilder};

/// Identifies one of the paper's evaluation datasets (used by the
/// experiment harness for labeling and default sizing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// 62k 2-d California locations.
    Sequoia,
    /// 110k 641-d image feature vectors.
    Aloi,
    /// 581k 53-d forest-cell descriptions.
    Fct,
    /// 70k 784-d digit images.
    Mnist,
    /// 1.28M 4096-d deep features.
    Imagenet,
}

impl PaperDataset {
    /// The paper's representational dimension.
    pub fn representational_dim(self) -> usize {
        match self {
            PaperDataset::Sequoia => 2,
            PaperDataset::Aloi => 641,
            PaperDataset::Fct => 53,
            PaperDataset::Mnist => 784,
            PaperDataset::Imagenet => 4096,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PaperDataset::Sequoia => "Sequoia",
            PaperDataset::Aloi => "ALOI",
            PaperDataset::Fct => "FCT",
            PaperDataset::Mnist => "MNIST",
            PaperDataset::Imagenet => "Imagenet",
        }
    }

    /// Generates the like-for-like synthetic dataset at size `n`.
    pub fn generate(self, n: usize, seed: u64) -> Dataset {
        match self {
            PaperDataset::Sequoia => sequoia_like(n, seed),
            PaperDataset::Aloi => aloi_like(n, seed),
            PaperDataset::Fct => fct_like(n, seed),
            PaperDataset::Mnist => mnist_like(n, seed),
            PaperDataset::Imagenet => imagenet_like(n, self.representational_dim(), seed),
        }
    }
}

/// Sequoia-like data: normalized 2-d locations, a mixture of ~40 population
/// clusters of varying spread over a uniform background. Intrinsic
/// dimension ≈ 1.8 (clustering pulls it slightly below 2).
pub fn sequoia_like(n: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut normal = Normal::new();
    let n_clusters: usize = 40;
    let centers: Vec<(f64, f64, f64)> = (0..n_clusters)
        .map(|_| {
            (
                rng.random::<f64>(),
                rng.random::<f64>(),
                // Cluster spreads span two orders of magnitude, like city
                // footprints vs metro regions.
                0.002 * (1.0 + 49.0 * rng.random::<f64>()),
            )
        })
        .collect();
    let mut b = DatasetBuilder::with_capacity(2, n);
    for _ in 0..n {
        let row = if rng.random::<f64>() < 0.75 {
            let (cx, cy, s) = centers[rng.random_range(0..n_clusters)];
            [
                (cx + s * normal.sample(&mut rng)).clamp(0.0, 1.0),
                (cy + s * normal.sample(&mut rng)).clamp(0.0, 1.0),
            ]
        } else {
            [rng.random(), rng.random()]
        };
        b.push(&row).expect("generated coordinates are finite");
    }
    b.build()
}

/// ALOI-like data: 641-dimensional vectors mixing a *dense* low-dimensional
/// population (objects whose appearance varies along ≈2 lighting/rotation
/// parameters) with a looser high-dimensional population. The dense
/// component owns the smallest pairwise distances, so the global
/// correlation dimension lands near 2 while the averaged local MLE tracks
/// the mixture — reproducing Table 1's ALOI row (MLE 7.71 vs GP 1.98).
pub fn aloi_like(n: usize, seed: u64) -> Dataset {
    mixed_manifold(
        n,
        641,
        &[
            MixComponent {
                weight: 0.45,
                intrinsic_dim: 2,
                clusters: 3,
                scale: 0.1,
                noise: 0.0,
                curvature: 0.4,
            },
            MixComponent {
                weight: 0.55,
                intrinsic_dim: 13,
                clusters: 5,
                scale: 1.0,
                noise: 0.1,
                curvature: 0.5,
            },
        ],
        28.0,
        seed,
    )
}

/// FCT-like data: 53 standardized topographic features on a ≈4-d manifold
/// with light noise; local and global estimates agree (Table 1 row FCT).
pub fn fct_like(n: usize, seed: u64) -> Dataset {
    let ds = embedded_manifold(ManifoldSpec {
        n,
        ambient_dim: 53,
        intrinsic_dim: 4,
        clusters: 12,
        noise: 0.05,
        curvature: 0.3,
        center_spread: 9.0,
        seed,
    });
    standardize(&ds)
}

/// MNIST-like data: 784-dimensional vectors mixing a dense ≈4-d population
/// (clean, canonical digit shapes) with a high-dimensional population of
/// irregular samples — the configuration where "the intrinsic dimension is
/// overestimated by MLE" relative to the correlation dimension (§8.1,
/// Table 1: MLE 12.15 vs GP 4.39).
pub fn mnist_like(n: usize, seed: u64) -> Dataset {
    mixed_manifold(
        n,
        784,
        &[
            MixComponent {
                weight: 0.45,
                intrinsic_dim: 4,
                clusters: 3,
                scale: 0.12,
                noise: 0.0,
                curvature: 0.5,
            },
            MixComponent {
                weight: 0.55,
                intrinsic_dim: 20,
                clusters: 5,
                scale: 1.0,
                noise: 0.15,
                curvature: 0.8,
            },
        ],
        45.0,
        seed,
    )
}

/// Imagenet-like data: deep-feature vectors (dimension configurable, the
/// paper uses 4096) on a ≈12-d manifold across many content clusters.
pub fn imagenet_like(n: usize, dim: usize, seed: u64) -> Dataset {
    embedded_manifold(ManifoldSpec {
        n,
        ambient_dim: dim,
        intrinsic_dim: 12.min(dim),
        clusters: 100.min(n.max(1)),
        noise: 0.3,
        curvature: 0.5,
        center_spread: 35.0,
        seed,
    })
}

/// Standardizes every feature to zero mean and unit variance (the paper
/// normalizes FCT "to standard scores"). Constant features are left at 0.
pub fn standardize(ds: &Dataset) -> Dataset {
    let n = ds.len();
    let m = ds.dim();
    if n == 0 {
        return ds.clone();
    }
    let mut mean = vec![0.0; m];
    for (_, p) in ds.iter() {
        for (a, x) in mean.iter_mut().zip(p) {
            *a += x;
        }
    }
    for a in mean.iter_mut() {
        *a /= n as f64;
    }
    let mut var = vec![0.0; m];
    for (_, p) in ds.iter() {
        for ((v, x), mu) in var.iter_mut().zip(p).zip(&mean) {
            *v += (x - mu) * (x - mu);
        }
    }
    let std: Vec<f64> = var.iter().map(|v| (v / n as f64).sqrt()).collect();
    let mut b = DatasetBuilder::with_capacity(m, n);
    let mut row = vec![0.0; m];
    for (_, p) in ds.iter() {
        for j in 0..m {
            row[j] = if std[j] > 1e-12 {
                (p[j] - mean[j]) / std[j]
            } else {
                0.0
            };
        }
        b.push(&row).expect("standardized coordinates are finite");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknn_core::Euclidean;
    use rknn_lid::{GpEstimator, HillEstimator, IdEstimator, TakensEstimator};

    fn hill() -> HillEstimator {
        HillEstimator {
            neighbors: 60,
            ..HillEstimator::default()
        }
    }

    #[test]
    fn dimensions_match_the_paper() {
        assert_eq!(sequoia_like(10, 0).dim(), 2);
        assert_eq!(aloi_like(10, 0).dim(), 641);
        assert_eq!(fct_like(10, 0).dim(), 53);
        assert_eq!(mnist_like(10, 0).dim(), 784);
        assert_eq!(imagenet_like(10, 256, 0).dim(), 256);
        assert_eq!(PaperDataset::Imagenet.representational_dim(), 4096);
        assert_eq!(PaperDataset::Aloi.name(), "ALOI");
        assert_eq!(PaperDataset::Fct.generate(25, 1).len(), 25);
    }

    #[test]
    fn sequoia_signature_id_near_two() {
        let ds = sequoia_like(3000, 1).into_shared();
        let mle = hill().estimate(&ds, &Euclidean).id;
        assert!((1.2..2.4).contains(&mle), "Sequoia-like MLE {mle}");
    }

    #[test]
    fn fct_signature_local_and_global_agree() {
        let ds = fct_like(3000, 2).into_shared();
        let mle = hill().estimate(&ds, &Euclidean).id;
        let gp = GpEstimator::new().estimate(&ds, &Euclidean).id;
        assert!((2.0..7.0).contains(&mle), "FCT-like MLE {mle}");
        assert!(
            (mle - gp).abs() < 2.5,
            "FCT-like MLE {mle} vs GP {gp} should agree"
        );
    }

    #[test]
    fn aloi_signature_mle_exceeds_cd() {
        // Table 1: ALOI MLE 7.71 vs GP 1.98 / Takens 2.16.
        let ds = aloi_like(3000, 3).into_shared();
        let mle = hill().estimate(&ds, &Euclidean).id;
        let gp = GpEstimator::new().estimate(&ds, &Euclidean).id;
        let tak = TakensEstimator::new().estimate(&ds, &Euclidean).id;
        assert!(mle > gp + 1.5, "ALOI-like: MLE {mle} must exceed GP {gp}");
        assert!((1.0..4.0).contains(&gp), "ALOI-like GP {gp}");
        assert!((tak - gp).abs() < 1.5, "Takens {tak} tracks GP {gp}");
    }

    #[test]
    fn mnist_signature_mle_overestimates() {
        // Table 1: MNIST MLE 12.15 vs GP 4.39.
        let ds = mnist_like(3000, 4).into_shared();
        let mle = hill().estimate(&ds, &Euclidean).id;
        let gp = GpEstimator::new().estimate(&ds, &Euclidean).id;
        assert!(mle > 6.5, "MNIST-like MLE {mle} should be large");
        assert!(gp < mle - 2.0, "MNIST-like GP {gp} well below MLE {mle}");
    }

    #[test]
    fn standardize_produces_z_scores() {
        let ds = Dataset::from_rows(&[vec![1.0, 5.0], vec![3.0, 5.0], vec![5.0, 5.0]]).unwrap();
        let z = standardize(&ds);
        // First feature: mean 3, sd sqrt(8/3).
        let col: Vec<f64> = (0..3).map(|i| z.point(i)[0]).collect();
        let mean: f64 = col.iter().sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
        // Constant feature maps to zero.
        assert!((0..3).all(|i| z.point(i)[1] == 0.0));
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(sequoia_like(100, 5), sequoia_like(100, 5));
        assert_eq!(mnist_like(50, 6), mnist_like(50, 6));
    }
}
