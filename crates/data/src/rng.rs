//! Sampling helpers on top of `rand`.
//!
//! The workspace's dependency policy avoids `rand_distr`; the one
//! distribution we need beyond uniforms is the standard normal, provided
//! here via the Box–Muller transform.

use rand::rngs::SmallRng;
use rand::Rng;

/// A standard-normal sampler caching the spare Box–Muller variate.
#[derive(Debug, Default)]
pub struct Normal {
    spare: Option<f64>,
}

impl Normal {
    /// Creates a sampler.
    pub fn new() -> Self {
        Normal::default()
    }

    /// Draws one N(0, 1) sample.
    pub fn sample(&mut self, rng: &mut SmallRng) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Box–Muller: u ∈ (0, 1], v ∈ [0, 1).
        let u: f64 = 1.0 - rng.random::<f64>();
        let v: f64 = rng.random::<f64>();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = std::f64::consts::TAU * v;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fills a buffer with N(0, 1) samples.
    pub fn fill(&mut self, rng: &mut SmallRng, out: &mut [f64]) {
        for v in out.iter_mut() {
            *v = self.sample(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn moments_are_standard_normal() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut normal = Normal::new();
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = normal.sample(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn samples_are_finite_and_reproducible() {
        let mut a = SmallRng::seed_from_u64(2);
        let mut b = SmallRng::seed_from_u64(2);
        let mut na = Normal::new();
        let mut nb = Normal::new();
        for _ in 0..1000 {
            let x = na.sample(&mut a);
            assert!(x.is_finite());
            assert_eq!(x, nb.sample(&mut b));
        }
    }
}
