//! Loaders for the interchange formats the paper's datasets ship in, plus
//! a deterministic downsampler/dim-slicer for offline scale experiments.
//!
//! * **fvecs / ivecs / bvecs** (TEXMEX / SIFT / GIST convention): each
//!   record is a little-endian `i32` dimension followed by that many
//!   elements (`f32`, `i32`, or `u8` respectively). All records must agree
//!   on the dimension.
//! * **idx** (MNIST convention): big-endian header `[0, 0, dtype, ndim]`,
//!   then `ndim` big-endian `u32` dimension sizes, then the elements in
//!   row-major order. The first dimension counts records; trailing
//!   dimensions are flattened into one vector per record (a 28×28 image
//!   becomes a 784-dimensional point).
//!
//! Every reader streams records straight into a
//! [`DatasetBuilder`] chunk by chunk — at no
//! point is an unpadded copy of the whole dataset held next to the padded
//! storage, so loading a million-point file peaks near the final dataset
//! footprint (see `DatasetBuilder`'s allocation accounting). Malformed
//! input yields a typed [`IoError`], never a panic.

use crate::io::IoError;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rknn_core::{CoreError, Dataset, DatasetBuilder};
use std::io::{Read, Write};

/// Options shared by all streaming loaders.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadOptions {
    /// Keep only the first `limit` records (a streaming prefix — the rest
    /// of the file is not read). `None` loads everything.
    pub limit: Option<usize>,
    /// Keep only the first `dims` coordinates of each record. `None` keeps
    /// the full dimension; a value at or above the record dimension is a
    /// no-op.
    pub dims: Option<usize>,
    /// Row-count hint for exact buffer pre-sizing (e.g. derived from file
    /// size). Purely an allocation hint; never changes what is loaded.
    pub rows_hint: Option<usize>,
}

impl LoadOptions {
    /// Options that load the whole file.
    pub fn all() -> Self {
        LoadOptions::default()
    }

    /// Sets the record-count prefix limit.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Sets the coordinate-slice width.
    pub fn with_dims(mut self, dims: usize) -> Self {
        self.dims = Some(dims);
        self
    }

    fn keep_dims(&self, file_dim: usize) -> usize {
        match self.dims {
            Some(d) => d.min(file_dim).max(1),
            None => file_dim,
        }
    }

    fn reserve_hint(&self) -> Option<usize> {
        match (self.rows_hint, self.limit) {
            (Some(h), Some(l)) => Some(h.min(l)),
            (Some(h), None) => Some(h),
            (None, l) => l,
        }
    }
}

/// Element type of one `*vecs` record payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VecsElem {
    F32,
    I32,
    U8,
}

impl VecsElem {
    fn size(self) -> usize {
        match self {
            VecsElem::F32 | VecsElem::I32 => 4,
            VecsElem::U8 => 1,
        }
    }

    fn decode(self, bytes: &[u8], out: &mut Vec<f64>) {
        match self {
            VecsElem::F32 => {
                for c in bytes.chunks_exact(4) {
                    out.push(f32::from_le_bytes(c.try_into().expect("4 bytes")) as f64);
                }
            }
            VecsElem::I32 => {
                for c in bytes.chunks_exact(4) {
                    out.push(i32::from_le_bytes(c.try_into().expect("4 bytes")) as f64);
                }
            }
            VecsElem::U8 => out.extend(bytes.iter().map(|&b| b as f64)),
        }
    }
}

/// Fills `buf` completely, or reports how the stream ended: `Ok(false)`
/// for a clean EOF before the first byte (only when `eof_ok`), a typed
/// [`IoError::Truncated`] for a mid-buffer EOF.
fn fill<R: Read>(r: &mut R, buf: &mut [u8], record: usize, eof_ok: bool) -> Result<bool, IoError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && eof_ok {
                    return Ok(false);
                }
                return Err(IoError::Truncated { record });
            }
            Ok(k) => got += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(IoError::Io(e)),
        }
    }
    Ok(true)
}

fn push_row(b: &mut DatasetBuilder, row: &[f64], record: usize) -> Result<(), IoError> {
    b.push(row).map_err(|e| match e {
        CoreError::NonFinite { coordinate, .. } => IoError::NonFinite {
            point: record,
            coordinate,
        },
        other => IoError::Format(other.to_string()),
    })?;
    Ok(())
}

/// Upper bound on coordinates per record accepted from a file header —
/// generous (the largest real interchange sets are ~1.5·10⁵-dim) while
/// keeping a corrupt header from demanding a multi-gigabyte payload
/// allocation before the truncation check can fire.
const MAX_RECORD_ELEMS: usize = 1 << 20;

/// Upper bound on the rows reserved ahead from an idx header's record
/// count: a corrupt count must not translate into a giant up-front
/// allocation. Files larger than this still load — the builder falls back
/// to reserve-ahead growth past the cap.
const MAX_RESERVE_ROWS: usize = 1 << 22;

fn read_vecs<R: Read>(
    mut reader: R,
    elem: VecsElem,
    opts: &LoadOptions,
) -> Result<Dataset, IoError> {
    let mut builder: Option<DatasetBuilder> = None;
    let mut file_dim = 0usize;
    let mut keep = 0usize;
    let mut payload: Vec<u8> = Vec::new();
    let mut row: Vec<f64> = Vec::new();
    let mut record = 0usize;
    while opts.limit.is_none_or(|l| record < l) {
        let mut hdr = [0u8; 4];
        if !fill(&mut reader, &mut hdr, record, true)? {
            break;
        }
        let d = i32::from_le_bytes(hdr);
        if d <= 0 {
            return Err(IoError::Format(format!(
                "record {record}: nonpositive dimension {d}"
            )));
        }
        let d = d as usize;
        if d > MAX_RECORD_ELEMS {
            return Err(IoError::Format(format!(
                "record {record}: implausible dimension {d} (corrupt header?)"
            )));
        }
        match builder {
            None => {
                file_dim = d;
                keep = opts.keep_dims(d);
                let mut b = DatasetBuilder::new(keep);
                if let Some(hint) = opts.reserve_hint() {
                    b.reserve(hint);
                }
                payload.resize(d * elem.size(), 0);
                builder = Some(b);
            }
            Some(_) if d != file_dim => {
                return Err(IoError::DimMismatch {
                    record,
                    expected: file_dim,
                    got: d,
                });
            }
            Some(_) => {}
        }
        fill(&mut reader, &mut payload, record, false)?;
        row.clear();
        // Decode only the kept prefix; the remaining payload bytes were
        // still consumed above so the stream stays aligned on records.
        elem.decode(&payload[..keep * elem.size()], &mut row);
        push_row(builder.as_mut().expect("builder installed"), &row, record)?;
        record += 1;
    }
    match builder {
        Some(b) => Ok(b.build()),
        None => Err(IoError::Format("no records found".into())),
    }
}

/// Reads the fvecs format (`i32` dimension header + `f32` coordinates per
/// record, little-endian throughout).
pub fn read_fvecs<R: Read>(reader: R, opts: &LoadOptions) -> Result<Dataset, IoError> {
    read_vecs(reader, VecsElem::F32, opts)
}

/// Reads the ivecs format (`i32` coordinates).
pub fn read_ivecs<R: Read>(reader: R, opts: &LoadOptions) -> Result<Dataset, IoError> {
    read_vecs(reader, VecsElem::I32, opts)
}

/// Reads the bvecs format (`u8` coordinates).
pub fn read_bvecs<R: Read>(reader: R, opts: &LoadOptions) -> Result<Dataset, IoError> {
    read_vecs(reader, VecsElem::U8, opts)
}

/// Writes a dataset in fvecs layout. Coordinates are rounded to `f32` (the
/// format's element type); a lossless roundtrip therefore requires
/// f32-representable coordinates.
pub fn write_fvecs<W: std::io::Write>(ds: &Dataset, writer: W) -> Result<(), IoError> {
    let mut w = std::io::BufWriter::new(writer);
    for (_, row) in ds.iter() {
        w.write_all(&(ds.dim() as i32).to_le_bytes())?;
        for &v in row {
            w.write_all(&(v as f32).to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes a dataset in ivecs layout. Coordinates are truncated to `i32`;
/// lossless only for integer-valued data in `i32` range.
pub fn write_ivecs<W: std::io::Write>(ds: &Dataset, writer: W) -> Result<(), IoError> {
    let mut w = std::io::BufWriter::new(writer);
    for (_, row) in ds.iter() {
        w.write_all(&(ds.dim() as i32).to_le_bytes())?;
        for &v in row {
            w.write_all(&(v as i32).to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// IDX element type codes (MNIST convention).
const IDX_U8: u8 = 0x08;
const IDX_I8: u8 = 0x09;
const IDX_I16: u8 = 0x0B;
const IDX_I32: u8 = 0x0C;
const IDX_F32: u8 = 0x0D;
const IDX_F64: u8 = 0x0E;

fn idx_elem_size(dtype: u8) -> Result<usize, IoError> {
    match dtype {
        IDX_U8 | IDX_I8 => Ok(1),
        IDX_I16 => Ok(2),
        IDX_I32 | IDX_F32 => Ok(4),
        IDX_F64 => Ok(8),
        other => Err(IoError::UnsupportedDtype(other)),
    }
}

fn idx_decode(dtype: u8, bytes: &[u8], out: &mut Vec<f64>) {
    match dtype {
        IDX_U8 => out.extend(bytes.iter().map(|&b| b as f64)),
        IDX_I8 => out.extend(bytes.iter().map(|&b| b as i8 as f64)),
        IDX_I16 => {
            for c in bytes.chunks_exact(2) {
                out.push(i16::from_be_bytes(c.try_into().expect("2 bytes")) as f64);
            }
        }
        IDX_I32 => {
            for c in bytes.chunks_exact(4) {
                out.push(i32::from_be_bytes(c.try_into().expect("4 bytes")) as f64);
            }
        }
        IDX_F32 => {
            for c in bytes.chunks_exact(4) {
                out.push(f32::from_be_bytes(c.try_into().expect("4 bytes")) as f64);
            }
        }
        IDX_F64 => {
            for c in bytes.chunks_exact(8) {
                out.push(f64::from_be_bytes(c.try_into().expect("8 bytes")));
            }
        }
        _ => unreachable!("idx_elem_size gates dtypes"),
    }
}

/// Reads the IDX format (MNIST images/labels). The first header dimension
/// counts records; trailing dimensions are flattened into one row per
/// record. Supports element types u8, i8, i16, i32, f32 and f64.
pub fn read_idx<R: Read>(mut reader: R, opts: &LoadOptions) -> Result<Dataset, IoError> {
    let mut magic = [0u8; 4];
    fill(&mut reader, &mut magic, 0, false).map_err(|e| match e {
        IoError::Truncated { .. } => IoError::BadMagic("file shorter than an idx header".into()),
        other => other,
    })?;
    if magic[0] != 0 || magic[1] != 0 {
        return Err(IoError::BadMagic(format!(
            "idx magic must start 0x00 0x00, found 0x{:02x} 0x{:02x}",
            magic[0], magic[1]
        )));
    }
    let dtype = magic[2];
    let elem = idx_elem_size(dtype)?;
    let ndim = magic[3] as usize;
    if ndim == 0 {
        return Err(IoError::Format(
            "idx header declares zero dimensions".into(),
        ));
    }
    let mut sizes = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        let mut word = [0u8; 4];
        fill(&mut reader, &mut word, 0, false)?;
        sizes.push(u32::from_be_bytes(word) as usize);
    }
    let n = sizes[0];
    let row_elems: usize = sizes[1..]
        .iter()
        .try_fold(1usize, |acc, &s| acc.checked_mul(s))
        .ok_or_else(|| IoError::Format("idx dimension product overflows".into()))?;
    if row_elems == 0 {
        return Err(IoError::Format("idx record has zero elements".into()));
    }
    if row_elems > MAX_RECORD_ELEMS {
        return Err(IoError::Format(format!(
            "idx record has implausibly many elements ({row_elems}; corrupt header?)"
        )));
    }
    let n_eff = opts.limit.map_or(n, |l| l.min(n));
    let keep = opts.keep_dims(row_elems);
    let mut b = DatasetBuilder::with_capacity(keep, n_eff.min(MAX_RESERVE_ROWS));
    let mut payload = vec![0u8; row_elems * elem];
    let mut row: Vec<f64> = Vec::new();
    for record in 0..n_eff {
        fill(&mut reader, &mut payload, record, false)?;
        row.clear();
        idx_decode(dtype, &payload[..keep * elem], &mut row);
        push_row(&mut b, &row, record)?;
    }
    if n_eff == 0 {
        return Err(IoError::Format("no records found".into()));
    }
    Ok(b.build())
}

/// Writes a dataset in IDX layout with `f64` elements (lossless; two
/// header dimensions: records × coordinates).
pub fn write_idx<W: std::io::Write>(ds: &Dataset, writer: W) -> Result<(), IoError> {
    let mut w = std::io::BufWriter::new(writer);
    w.write_all(&[0, 0, IDX_F64, 2])?;
    w.write_all(&(ds.len() as u32).to_be_bytes())?;
    w.write_all(&(ds.dim() as u32).to_be_bytes())?;
    for (_, row) in ds.iter() {
        for &v in row {
            w.write_all(&v.to_be_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// A deterministic seeded downsample: `n` points drawn without replacement
/// (ids shuffled by `seed`, then kept in ascending id order so the result
/// is stable under re-numbering of the sample). Returns the whole dataset
/// when `n >= ds.len()`.
pub fn downsample(ds: &Dataset, n: usize, seed: u64) -> Dataset {
    if n >= ds.len() {
        return ds.clone();
    }
    let mut ids: Vec<usize> = (0..ds.len()).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    ids.truncate(n);
    ids.sort_unstable();
    ds.subset(&ids).expect("ids drawn from 0..len")
}

/// Keeps only the first `dims` coordinates of every point (a deterministic
/// dim-slicer for d-grid experiments). A `dims` at or above the dataset
/// dimension returns a clone.
pub fn slice_dims(ds: &Dataset, dims: usize) -> Dataset {
    if dims >= ds.dim() || ds.dim() == 0 {
        return ds.clone();
    }
    let keep = dims.max(1);
    let mut b = DatasetBuilder::with_capacity(keep, ds.len());
    for (_, row) in ds.iter() {
        b.push(&row[..keep]).expect("finite prefix of a valid row");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(&[
            vec![1.0, -2.5, 0.25],
            vec![0.5, 1024.0, -8.0],
            vec![3.125, 4.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn fvecs_roundtrip_preserves_f32_representable_data() {
        let ds = sample();
        let mut buf = Vec::new();
        write_fvecs(&ds, &mut buf).unwrap();
        assert_eq!(buf.len(), 3 * (4 + 3 * 4));
        let back = read_fvecs(buf.as_slice(), &LoadOptions::all()).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn ivecs_and_bvecs_decode_their_element_types() {
        let ds = Dataset::from_rows(&[vec![1.0, -7.0], vec![250.0, 3.0]]).unwrap();
        let mut buf = Vec::new();
        write_ivecs(&ds, &mut buf).unwrap();
        let back = read_ivecs(buf.as_slice(), &LoadOptions::all()).unwrap();
        assert_eq!(back, ds);

        // bvecs: dimension header + raw bytes.
        let mut bv = Vec::new();
        bv.extend(2i32.to_le_bytes());
        bv.extend([5u8, 200]);
        bv.extend(2i32.to_le_bytes());
        bv.extend([0u8, 255]);
        let back = read_bvecs(bv.as_slice(), &LoadOptions::all()).unwrap();
        assert_eq!(back.point(0), &[5.0, 200.0]);
        assert_eq!(back.point(1), &[0.0, 255.0]);
    }

    #[test]
    fn limit_and_dims_slice_the_stream() {
        let ds = sample();
        let mut buf = Vec::new();
        write_fvecs(&ds, &mut buf).unwrap();
        let opts = LoadOptions::all().with_limit(2).with_dims(2);
        let back = read_fvecs(buf.as_slice(), &opts).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.dim(), 2);
        assert_eq!(back.point(1), &ds.point(1)[..2]);
        // A limit of zero reads nothing → typed "no records" error.
        assert!(read_fvecs(buf.as_slice(), &LoadOptions::all().with_limit(0)).is_err());
    }

    #[test]
    fn vecs_corruption_yields_typed_errors() {
        let ds = sample();
        let mut buf = Vec::new();
        write_fvecs(&ds, &mut buf).unwrap();
        // Truncated payload.
        let err = read_fvecs(&buf[..buf.len() - 2], &LoadOptions::all()).unwrap_err();
        assert!(matches!(err, IoError::Truncated { record: 2 }), "{err}");
        // Truncated header.
        let err = read_fvecs(&buf[..buf.len() - 14], &LoadOptions::all()).unwrap_err();
        assert!(matches!(err, IoError::Truncated { .. }), "{err}");
        // Dimension mismatch in the third record.
        let mut bad = buf.clone();
        let off = 2 * (4 + 12);
        bad[off..off + 4].copy_from_slice(&2i32.to_le_bytes());
        let err = read_fvecs(bad.as_slice(), &LoadOptions::all()).unwrap_err();
        assert!(
            matches!(
                err,
                IoError::DimMismatch {
                    record: 2,
                    expected: 3,
                    got: 2
                }
            ),
            "{err}"
        );
        // Nonpositive dimension.
        let mut bad = buf.clone();
        bad[..4].copy_from_slice(&(-1i32).to_le_bytes());
        assert!(matches!(
            read_fvecs(bad.as_slice(), &LoadOptions::all()),
            Err(IoError::Format(_))
        ));
        // NaN coordinate.
        let mut bad = buf;
        bad[4..8].copy_from_slice(&f32::NAN.to_le_bytes());
        let err = read_fvecs(bad.as_slice(), &LoadOptions::all()).unwrap_err();
        assert!(
            matches!(
                err,
                IoError::NonFinite {
                    point: 0,
                    coordinate: 0
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn idx_roundtrip_is_bit_exact() {
        let ds = sample();
        let mut buf = Vec::new();
        write_idx(&ds, &mut buf).unwrap();
        let back = read_idx(buf.as_slice(), &LoadOptions::all()).unwrap();
        assert_eq!(back, ds);
        // Prefix limit + dim slice.
        let back = read_idx(
            buf.as_slice(),
            &LoadOptions::all().with_limit(1).with_dims(2),
        )
        .unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.point(0), &ds.point(0)[..2]);
    }

    #[test]
    fn idx_flattens_trailing_dimensions_and_reads_all_dtypes() {
        // A 2×2×3 u8 tensor: two records of six flattened coordinates.
        let mut buf = vec![0, 0, IDX_U8, 3];
        buf.extend(2u32.to_be_bytes());
        buf.extend(2u32.to_be_bytes());
        buf.extend(3u32.to_be_bytes());
        buf.extend(1..=12u8);
        let ds = read_idx(buf.as_slice(), &LoadOptions::all()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dim(), 6);
        assert_eq!(ds.point(1), &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);

        // i8 / i16 / i32 / f32 element decoding, one record each.
        let cases: &[(u8, Vec<u8>, f64)] = &[
            (IDX_I8, vec![0xFF], -1.0),
            (IDX_I16, (-300i16).to_be_bytes().to_vec(), -300.0),
            (IDX_I32, 70000i32.to_be_bytes().to_vec(), 70000.0),
            (IDX_F32, 2.5f32.to_be_bytes().to_vec(), 2.5),
        ];
        for (dtype, payload, want) in cases {
            let mut buf = vec![0, 0, *dtype, 2];
            buf.extend(1u32.to_be_bytes());
            buf.extend(1u32.to_be_bytes());
            buf.extend(payload);
            let ds = read_idx(buf.as_slice(), &LoadOptions::all()).unwrap();
            assert_eq!(ds.point(0), &[*want], "dtype 0x{dtype:02x}");
        }
    }

    #[test]
    fn idx_corruption_yields_typed_errors() {
        let ds = sample();
        let mut buf = Vec::new();
        write_idx(&ds, &mut buf).unwrap();
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = 7;
        assert!(matches!(
            read_idx(bad.as_slice(), &LoadOptions::all()),
            Err(IoError::BadMagic(_))
        ));
        // Unsupported dtype.
        let mut bad = buf.clone();
        bad[2] = 0x42;
        assert!(matches!(
            read_idx(bad.as_slice(), &LoadOptions::all()),
            Err(IoError::UnsupportedDtype(0x42))
        ));
        // Truncated payload.
        let err = read_idx(&buf[..buf.len() - 1], &LoadOptions::all()).unwrap_err();
        assert!(matches!(err, IoError::Truncated { record: 2 }), "{err}");
        // Empty input.
        assert!(matches!(
            read_idx(&[][..], &LoadOptions::all()),
            Err(IoError::BadMagic(_))
        ));
    }

    #[test]
    fn downsample_is_deterministic_and_order_stable() {
        let ds = crate::uniform_cube(200, 4, 9);
        let a = downsample(&ds, 50, 7);
        let b = downsample(&ds, 50, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert_ne!(a, downsample(&ds, 50, 8), "seed must matter");
        // Full-size (or larger) request returns the dataset unchanged.
        assert_eq!(downsample(&ds, 200, 1), ds);
        assert_eq!(downsample(&ds, 10_000, 1), ds);
    }

    #[test]
    fn slice_dims_keeps_prefixes() {
        let ds = sample();
        let cut = slice_dims(&ds, 2);
        assert_eq!(cut.dim(), 2);
        assert_eq!(cut.len(), ds.len());
        for i in 0..ds.len() {
            assert_eq!(cut.point(i), &ds.point(i)[..2]);
        }
        assert_eq!(slice_dims(&ds, 3), ds);
        assert_eq!(slice_dims(&ds, 99), ds);
    }
}
