//! Dataset import/export.
//!
//! Two formats, both dependency-free:
//!
//! * **CSV** — one point per line, coordinates separated by commas;
//!   `#`-prefixed lines are comments. Interoperates with the usual
//!   numeric-data tooling (this is also how the original evaluation
//!   datasets are distributed).
//! * **FVB** ("flat vector binary") — a compact little-endian binary
//!   format: magic `RKNNFVB1`, `u64` point count, `u64` dimension,
//!   then `n·m` little-endian `f64`s. Lossless and ~3× smaller/faster
//!   than CSV for high-dimensional data.

use rknn_core::{Dataset, DatasetBuilder};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic header of the binary format.
pub const FVB_MAGIC: &[u8; 8] = b"RKNNFVB1";

/// Errors raised by dataset I/O.
///
/// Malformed input is always a typed error, never a panic — the loader
/// variants ([`IoError::BadMagic`], [`IoError::Truncated`],
/// [`IoError::DimMismatch`], [`IoError::UnsupportedDtype`],
/// [`IoError::NonFinite`]) let callers distinguish corruption modes.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the input.
    Format(String),
    /// The file's magic bytes do not identify the expected format.
    BadMagic(String),
    /// The file ended mid-record (header or payload cut short).
    Truncated {
        /// Zero-based index of the record that was cut short.
        record: usize,
    },
    /// A record's declared dimension disagrees with the first record's.
    DimMismatch {
        /// Zero-based index of the offending record.
        record: usize,
        /// Dimension declared by the first record.
        expected: usize,
        /// Dimension declared by this record.
        got: usize,
    },
    /// An IDX file declares an element type this loader does not support.
    UnsupportedDtype(u8),
    /// A coordinate parsed to NaN or an infinity.
    NonFinite {
        /// Zero-based point (record) index.
        point: usize,
        /// Zero-based coordinate index within the point.
        coordinate: usize,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
            IoError::BadMagic(m) => write!(f, "bad magic: {m}"),
            IoError::Truncated { record } => {
                write!(f, "truncated input: record {record} is cut short")
            }
            IoError::DimMismatch {
                record,
                expected,
                got,
            } => write!(
                f,
                "record {record}: dimension {got} disagrees with first record's {expected}"
            ),
            IoError::UnsupportedDtype(code) => {
                write!(f, "unsupported idx element type 0x{code:02x}")
            }
            IoError::NonFinite { point, coordinate } => {
                write!(f, "point {point} coordinate {coordinate} is not finite")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses a dataset from CSV text.
pub fn read_csv<R: Read>(reader: R) -> Result<Dataset, IoError> {
    let reader = BufReader::new(reader);
    let mut builder: Option<DatasetBuilder> = None;
    let mut row: Vec<f64> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        row.clear();
        for field in trimmed.split(',') {
            let v: f64 = field.trim().parse().map_err(|_| {
                IoError::Format(format!(
                    "line {}: cannot parse '{}'",
                    lineno + 1,
                    field.trim()
                ))
            })?;
            row.push(v);
        }
        let b = builder.get_or_insert_with(|| DatasetBuilder::new(row.len()));
        b.push(&row)
            .map_err(|e| IoError::Format(format!("line {}: {e}", lineno + 1)))?;
    }
    match builder {
        Some(b) => Ok(b.build()),
        None => Err(IoError::Format("no data rows found".into())),
    }
}

/// Writes a dataset as CSV.
pub fn write_csv<W: Write>(ds: &Dataset, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    let mut line = String::new();
    for (_, p) in ds.iter() {
        line.clear();
        for (j, v) in p.iter().enumerate() {
            if j > 0 {
                line.push(',');
            }
            line.push_str(&format!("{v}"));
        }
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads the binary FVB format.
pub fn read_fvb<R: Read>(mut reader: R) -> Result<Dataset, IoError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != FVB_MAGIC {
        return Err(IoError::Format("bad magic: not an FVB file".into()));
    }
    let mut word = [0u8; 8];
    reader.read_exact(&mut word)?;
    let n = u64::from_le_bytes(word) as usize;
    reader.read_exact(&mut word)?;
    let dim = u64::from_le_bytes(word) as usize;
    if dim == 0 {
        return Err(IoError::Format("dimension 0".into()));
    }
    let total = n
        .checked_mul(dim)
        .ok_or_else(|| IoError::Format("size overflow".into()))?;
    let mut data = Vec::with_capacity(total);
    let mut buf = vec![0u8; 8 * 4096];
    let mut remaining = total;
    while remaining > 0 {
        let take = (remaining * 8).min(buf.len());
        reader.read_exact(&mut buf[..take])?;
        for chunk in buf[..take].chunks_exact(8) {
            data.push(f64::from_le_bytes(chunk.try_into().expect("chunk of 8")));
        }
        remaining -= take / 8;
    }
    Dataset::from_flat(dim, data).map_err(|e| IoError::Format(e.to_string()))
}

/// Writes the binary FVB format.
pub fn write_fvb<W: Write>(ds: &Dataset, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    w.write_all(FVB_MAGIC)?;
    w.write_all(&(ds.len() as u64).to_le_bytes())?;
    w.write_all(&(ds.dim() as u64).to_le_bytes())?;
    // Serialize the logical rows only — the dataset's in-memory row padding
    // must never reach the wire format.
    for (_, row) in ds.iter() {
        for v in row {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

fn extension(path: &Path) -> String {
    path.extension()
        .map(|e| e.to_string_lossy().to_ascii_lowercase())
        .unwrap_or_default()
}

/// Loads a dataset from a path, dispatching on extension: `.fvb` is the
/// native binary format, `.fvecs`/`.ivecs`/`.bvecs`/`.idx` are interchange
/// formats (see [`crate::formats`]), anything else is parsed as CSV.
pub fn load(path: &Path) -> Result<Dataset, IoError> {
    load_with(path, &crate::formats::LoadOptions::all())
}

/// [`load`] with streaming options: a record-prefix `limit` and a
/// coordinate `dims` slice are applied *during* the read for the record
/// formats (the rest of the file is never parsed) and after the read for
/// CSV/FVB. For the fixed-record-size `*vecs` formats the row count is
/// derived from the file size so the padded buffer is reserved exactly
/// once (no growth reallocations).
pub fn load_with(path: &Path, opts: &crate::formats::LoadOptions) -> Result<Dataset, IoError> {
    use crate::formats;
    let ext = extension(path);
    let file = std::fs::File::open(path)?;
    match ext.as_str() {
        "fvecs" | "ivecs" | "bvecs" => {
            // Peek the first record's dimension to derive the exact row
            // count from the fixed record size, then reserve once.
            let elem: u64 = if ext == "bvecs" { 1 } else { 4 };
            let bytes = file.metadata()?.len();
            let mut hdr = [0u8; 4];
            let mut reader = BufReader::new(file);
            let mut got = 0;
            while got < hdr.len() {
                match reader.read(&mut hdr[got..]) {
                    Ok(0) => break,
                    Ok(k) => got += k,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e.into()),
                }
            }
            let hint = if got == 4 {
                let d = i32::from_le_bytes(hdr);
                (d > 0).then(|| (bytes / (4 + d as u64 * elem)) as usize)
            } else {
                None
            };
            let mut o = *opts;
            o.rows_hint = o.rows_hint.or(hint);
            // Stitch the peeked header bytes back in front of the stream.
            let reader = (&hdr[..got]).chain(reader);
            match ext.as_str() {
                "fvecs" => formats::read_fvecs(reader, &o),
                "ivecs" => formats::read_ivecs(reader, &o),
                _ => formats::read_bvecs(reader, &o),
            }
        }
        "idx" => formats::read_idx(BufReader::new(file), opts),
        _ => {
            let full = if ext == "fvb" {
                read_fvb(file)?
            } else {
                read_csv(file)?
            };
            let cut = match opts.limit {
                Some(l) if l < full.len() => full
                    .subset(&(0..l).collect::<Vec<_>>())
                    .expect("prefix ids in range"),
                _ => full,
            };
            Ok(match opts.dims {
                Some(d) => formats::slice_dims(&cut, d),
                None => cut,
            })
        }
    }
}

/// Saves a dataset to a path, dispatching on extension as in [`load`]
/// (`.fvb` native binary, `.fvecs`/`.ivecs`/`.idx` interchange, CSV
/// otherwise).
pub fn save(ds: &Dataset, path: &Path) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    match extension(path).as_str() {
        "fvb" => write_fvb(ds, file),
        "fvecs" => crate::formats::write_fvecs(ds, file),
        "ivecs" => crate::formats::write_ivecs(ds, file),
        "idx" => crate::formats::write_idx(ds, file),
        _ => write_csv(ds, file),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(&[vec![1.0, -2.5], vec![0.25, 1e-9], vec![3.125, 4.0]]).unwrap()
    }

    #[test]
    fn csv_roundtrip_is_lossless() {
        let ds = sample();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn csv_skips_comments_and_blank_lines() {
        let text = "# header comment\n1,2\n\n  # another\n3,4\n";
        let ds = read_csv(text.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point(1), &[3.0, 4.0]);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(read_csv("1,2\nfoo,4\n".as_bytes()).is_err());
        assert!(read_csv("1,2\n3\n".as_bytes()).is_err(), "ragged row");
        assert!(read_csv("# only comments\n".as_bytes()).is_err());
        assert!(
            read_csv("1,NaN\n".as_bytes()).is_err(),
            "non-finite rejected"
        );
    }

    #[test]
    fn fvb_roundtrip_is_bit_exact() {
        let ds = sample();
        let mut buf = Vec::new();
        write_fvb(&ds, &mut buf).unwrap();
        assert_eq!(&buf[..8], FVB_MAGIC);
        let back = read_fvb(buf.as_slice()).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn fvb_rejects_corruption() {
        let ds = sample();
        let mut buf = Vec::new();
        write_fvb(&ds, &mut buf).unwrap();
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_fvb(bad.as_slice()).is_err());
        // Truncated payload.
        let bad = &buf[..buf.len() - 4];
        assert!(read_fvb(bad).is_err());
    }

    #[test]
    fn path_dispatch() {
        let dir = std::env::temp_dir();
        let ds = sample();
        for name in ["rknn_io_test.csv", "rknn_io_test.fvb", "rknn_io_test.idx"] {
            let path = dir.join(name);
            save(&ds, &path).unwrap();
            let back = load(&path).unwrap();
            assert_eq!(ds, back, "{name}");
            let _ = std::fs::remove_file(&path);
        }
        // fvecs stores f32, so roundtrip through f32-representable data.
        let ds32 = Dataset::from_rows(&[vec![1.0, -2.5], vec![0.25, 1024.5]]).unwrap();
        let path = dir.join("rknn_io_test.fvecs");
        save(&ds32, &path).unwrap();
        assert_eq!(load(&path).unwrap(), ds32);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_with_applies_limit_and_dims_across_formats() {
        let dir = std::env::temp_dir();
        let ds = crate::uniform_cube(20, 6, 11);
        let opts = crate::formats::LoadOptions::all()
            .with_limit(7)
            .with_dims(3);
        for name in [
            "rknn_io_lw.csv",
            "rknn_io_lw.fvb",
            "rknn_io_lw.fvecs",
            "rknn_io_lw.idx",
        ] {
            let path = dir.join(name);
            save(&ds, &path).unwrap();
            let back = load_with(&path, &opts).unwrap();
            assert_eq!(back.len(), 7, "{name}");
            assert_eq!(back.dim(), 3, "{name}");
            // fvecs quantizes to f32; uniform_cube coordinates are f64
            // uniform samples, so compare against the quantized prefix.
            for i in 0..7 {
                for j in 0..3 {
                    let want = if name.ends_with(".fvecs") {
                        ds.point(i)[j] as f32 as f64
                    } else {
                        ds.point(i)[j]
                    };
                    assert_eq!(back.point(i)[j], want, "{name} [{i}][{j}]");
                }
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn large_roundtrip_through_buffered_chunks() {
        // Exercise the chunked FVB reader with > 4096 values.
        let ds = crate::uniform_cube(700, 13, 3);
        let mut buf = Vec::new();
        write_fvb(&ds, &mut buf).unwrap();
        assert_eq!(read_fvb(buf.as_slice()).unwrap(), ds);
    }
}
