//! Synthetic dataset generators for the RDT evaluation.
//!
//! The paper evaluates on Sequoia, ALOI, Forest Cover Type, MNIST and
//! Imagenet. Those exact datasets are not redistributable with this
//! repository, and what the algorithms actually respond to is their
//! *structure*: representational dimension, intrinsic dimension, cluster
//! layout, and the gap between local (MLE) and global (correlation-
//! dimension) estimates (Table 1). The generators in [`paperlike`]
//! reproduce that structure — low-dimensional (optionally curved) manifolds
//! embedded in the right ambient dimension with calibrated noise — and the
//! crate's tests verify the Table 1 signatures with the estimators from
//! `rknn-lid`. See `DESIGN.md` §4 for the substitution table.
//!
//! [`generic`] provides the building blocks (uniform cubes, Gaussian
//! mixtures, embedded manifolds) used by unit and property tests across the
//! workspace, and [`workload`] samples reproducible query sets.

#![warn(missing_docs)]

pub mod formats;
pub mod generic;
pub mod io;
pub mod paperlike;
pub mod rng;
pub mod workload;

pub use formats::{
    downsample, read_bvecs, read_fvecs, read_idx, read_ivecs, slice_dims, LoadOptions,
};
pub use generic::{
    embedded_manifold, gaussian_blobs, mixed_manifold, uniform_cube, ManifoldSpec, MixComponent,
};
pub use io::{load, load_with, save};
pub use paperlike::{aloi_like, fct_like, imagenet_like, mnist_like, sequoia_like, PaperDataset};
pub use workload::sample_queries;
