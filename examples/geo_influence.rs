//! Bichromatic influence queries on geographic data (the services/clients
//! scenario of the paper's introduction \[29, 48, 50\]).
//!
//! Facilities (services) and households (clients) share a map; the
//! *influence set* of a facility is the set of households that would rank
//! it among their k closest facilities. We answer it with the bichromatic
//! RDT extension and validate against brute force.
//!
//! ```text
//! cargo run --release --example geo_influence
//! ```

use rknn::prelude::*;
use rknn::rdt::{bichromatic::bichromatic_brute, BichromaticRdt, RdtParams};

fn main() {
    // Households follow the clustered population layout; facilities are a
    // sparser sample of the same geography.
    let households = rknn::data::sequoia_like(6000, 1).into_shared();
    let facilities = rknn::data::sequoia_like(120, 2).into_shared();

    let hh_index = CoverTree::build(households.clone(), Euclidean);
    let fac_index = CoverTree::build(facilities.clone(), Euclidean);

    let k = 2; // households served by their 2 nearest facilities
    let handle = BichromaticRdt::new(RdtParams::new(k, 8.0));

    // Rank facilities by influence (size of their bichromatic RkNN set).
    let mut influence: Vec<(PointId, usize)> = (0..facilities.len())
        .map(|f| {
            let q = facilities.point(f).to_vec();
            let ans = handle.query(&fac_index, &hh_index, &q, Some(f));
            (f, ans.result.len())
        })
        .collect();
    influence.sort_by_key(|&(_, n)| std::cmp::Reverse(n));

    println!("most influential facilities (k = {k}):");
    for (f, n) in influence.iter().take(5) {
        let p = facilities.point(*f);
        println!(
            "  facility {f:3} at ({:.3}, {:.3}): serves {n} households",
            p[0], p[1]
        );
    }

    // Validate the top facility against brute force.
    let (top, top_n) = influence[0];
    let q = facilities.point(top).to_vec();
    let truth = bichromatic_brute(&facilities, &households, &Euclidean, &q, k, Some(top));
    println!(
        "\nvalidation: RDT found {top_n} households, brute force {}: {}",
        truth.len(),
        if truth.len() == top_n {
            "match"
        } else {
            "MISMATCH"
        }
    );
    let mean = influence.iter().map(|&(_, n)| n).sum::<usize>() as f64 / influence.len() as f64;
    println!(
        "mean influence over {} facilities: {mean:.1} households",
        influence.len()
    );
}
