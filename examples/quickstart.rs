//! Quickstart: build an index, run reverse-kNN queries, inspect the
//! tradeoff knobs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rknn::prelude::*;
use rknn::rdt::ScalePolicy;
use rknn_lid::GpEstimator;

fn main() {
    // 1. A dataset: 5,000 clustered points in 8 dimensions.
    let ds = rknn::data::gaussian_blobs(5000, 8, 12, 0.5, 42).into_shared();
    println!("dataset: {} points, {} dims", ds.len(), ds.dim());

    // 2. A forward-kNN substrate. RDT works with any index that supports
    //    incremental nearest-neighbor search; the cover tree is the
    //    paper's default.
    let index = CoverTree::build(ds.clone(), Euclidean);

    // 3. Pick the scale parameter t. Theorem 1 guarantees exactness when
    //    t exceeds the (expensive) MaxGED; in practice one estimates the
    //    intrinsic dimensionality once per dataset (§6 of the paper).
    let t = ScalePolicy::Gp(GpEstimator::new()).resolve(&ds, &Euclidean);
    println!("estimated intrinsic dimensionality → t = {t:.2}");

    // 4. Reverse 10-NN query: which points have point 123 among their own
    //    ten nearest neighbors?
    let rdt = RdtPlus::new(rknn::rdt::RdtParams::new(10, t));
    let answer = rdt.query(&index, 123);
    println!(
        "RkNN(123, 10): {} points {:?}",
        answer.result.len(),
        answer.ids().iter().take(8).collect::<Vec<_>>()
    );
    println!(
        "work: retrieved {} candidates, {} lazily accepted, {} lazily rejected, \
         {} verified, {} distance computations",
        answer.stats.retrieved,
        answer.stats.lazy_accepts,
        answer.stats.lazy_rejects + answer.stats.excluded,
        answer.stats.verified,
        answer.stats.total_dist_comps()
    );

    // 5. Compare against the exact answer.
    let brute = BruteForce::new(ds, Euclidean);
    let mut st = SearchStats::new();
    let truth = brute.rknn(123, 10, &mut st);
    let truth_ids: std::collections::HashSet<_> = truth.iter().map(|n| n.id).collect();
    let hits = answer
        .result
        .iter()
        .filter(|n| truth_ids.contains(&n.id))
        .count();
    println!(
        "exact answer has {} points; recall {:.3}, precision {:.3}",
        truth.len(),
        if truth.is_empty() {
            1.0
        } else {
            hits as f64 / truth.len() as f64
        },
        if answer.result.is_empty() {
            1.0
        } else {
            hits as f64 / answer.result.len() as f64
        },
    );
}
