//! Reverse-neighbor counts as an outlier score (the ODIN idea: Hautamäki
//! et al. \[18\], one of the data-mining applications motivating the paper).
//!
//! A point that appears in few other points' k-neighborhoods — a small
//! reverse-kNN set — is weakly "connected" to the data and likely an
//! outlier; hub points have large reverse neighborhoods \[46\]. RDT lets
//! this score be computed without materializing all-kNN graphs.
//!
//! ```text
//! cargo run --release --example outlier_detection
//! ```

use rknn::prelude::*;
use rknn::rdt::RdtParams;

fn main() {
    // A clustered dataset plus a handful of injected anomalies.
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let base = rknn::data::gaussian_blobs(2000, 6, 8, 0.4, 7);
    for (_, p) in base.iter() {
        rows.push(p.to_vec());
    }
    // Outliers far from every blob (blob centers live in [0, 10]^6).
    let outliers = [
        vec![25.0, 25.0, 25.0, 25.0, 25.0, 25.0],
        vec![-12.0, 30.0, -9.0, 22.0, -15.0, 28.0],
        vec![40.0, -3.0, 18.0, -20.0, 33.0, 5.0],
    ];
    let first_outlier = rows.len();
    rows.extend(outliers.iter().cloned());
    let ds = Dataset::from_rows(&rows).unwrap().into_shared();

    let index = CoverTree::build(ds.clone(), Euclidean);
    let k = 15;
    let rdt = Rdt::new(RdtParams::new(k, 8.0));

    // Score every point by its reverse-neighbor count. Note the hubness
    // skew the paper cites [46]: even regular points in moderate dimensions
    // can have empty reverse neighborhoods ("anti-hubs"), so the count is a
    // *score*, with 0 marking the candidate outlier set.
    let scored: Vec<(PointId, usize)> = (0..ds.len())
        .map(|q| (q, rdt.query(&index, q).result.len()))
        .collect();

    let zero_count = scored.iter().filter(|&&(_, c)| c == 0).count();
    let mean_count = scored.iter().map(|&(_, c)| c).sum::<usize>() as f64 / scored.len() as f64;
    println!(
        "reverse-{k}NN counts: mean {mean_count:.1}, {zero_count} points with count 0 \
         (candidate outliers, including anti-hubs)"
    );
    let max = scored.iter().max_by_key(|&&(_, c)| c).unwrap();
    println!("strongest hub: point {} with |RkNN| = {}", max.0, max.1);

    for (id, count) in scored.iter().skip(first_outlier) {
        println!("  injected outlier {id}: |RkNN| = {count}");
    }
    // Every injected outlier must land in the zero-score candidate set.
    assert!(
        scored.iter().skip(first_outlier).all(|&(_, c)| c == 0),
        "injected outliers must have empty reverse neighborhoods"
    );
    println!("\nall 3 injected outliers have empty reverse-{k}NN sets — flagged as outliers");
}
