//! Reverse-kNN maintenance under insertions and deletions — the data-
//! warehouse/stream scenario of the paper's introduction (\[1, 36, 35\]):
//! "determining those objects that would potentially be affected by a
//! particular data update operation".
//!
//! RDT needs no precomputed per-point kNN information, so updates cost
//! nothing beyond maintaining the forward index — here a cover tree with
//! dynamic inserts and tombstone deletes.
//!
//! ```text
//! cargo run --release --example dynamic_stream
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rknn::index::DynamicIndex;
use rknn::prelude::*;
use rknn::rdt::RdtParams;

fn main() {
    let ds = rknn::data::gaussian_blobs(3000, 4, 6, 0.5, 9).into_shared();
    let mut index = CoverTree::build(ds, Euclidean);
    let k = 10;
    let rdt = Rdt::new(RdtParams::new(k, 10.0));
    let mut rng = SmallRng::seed_from_u64(1);

    // Stream phase: each arriving point's reverse neighborhood is exactly
    // the set of existing points whose k-NN lists the arrival invalidates.
    println!("processing 200 insertions...");
    let mut affected_total = 0usize;
    for _ in 0..200 {
        let new_point: Vec<f64> = (0..4).map(|_| rng.random::<f64>() * 10.0).collect();
        let id = index.insert(&new_point).expect("valid point");
        let affected = rdt.query(&index, id);
        affected_total += affected.result.len();
    }
    println!(
        "  mean #points whose k-NN changed per insertion: {:.2}",
        affected_total as f64 / 200.0
    );

    // Deletion phase: a removed point affects exactly its reverse
    // neighbors (they must refill their k-NN lists).
    println!("processing 100 deletions...");
    let mut affected_total = 0usize;
    for victim in 0..100usize {
        let affected = rdt.query(&index, victim);
        affected_total += affected.result.len();
        assert!(index.remove(victim));
    }
    println!(
        "  mean #points whose k-NN changed per deletion: {:.2}",
        affected_total as f64 / 100.0
    );
    println!("index now holds {} live points", index.num_points());

    // Consistency check: a fresh index over the surviving points gives the
    // same answers as the incrementally maintained one.
    let survivors: Vec<Vec<f64>> = (100..index.num_points() + 100)
        .map(|id| index.point(id).to_vec())
        .collect();
    let fresh_ds = Dataset::from_rows(&survivors).unwrap().into_shared();
    let fresh = CoverTree::build(fresh_ds, Euclidean);
    // Point ids shifted by 100 after the deletions.
    let old_ans: Vec<_> = rdt
        .query(&index, 150)
        .ids()
        .iter()
        .map(|id| id - 100)
        .collect();
    let new_ans = rdt.query(&fresh, 50).ids();
    assert_eq!(old_ans, new_ans, "incremental and rebuilt indexes agree");
    println!("incremental index agrees with a fresh rebuild — done");
}
