//! Reverse-kNN maintenance under insertions and deletions — the data-
//! warehouse/stream scenario of the paper's introduction (\[1, 36, 35\]):
//! "determining those objects that would potentially be affected by a
//! particular data update operation".
//!
//! RDT needs no precomputed per-point kNN information, so a
//! [`MaintainedStream`] can keep *every* live point's reverse-kNN set
//! current through mixed insert/delete churn, recomputing only the answers
//! each update can have touched. In the exact regime (t = 50) the
//! maintained table is byte-identical to rebuilding it from scratch —
//! asserted below — at a small fraction of the rebuild's cost.
//!
//! ```text
//! cargo run --release --example dynamic_stream
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rknn::prelude::*;
use std::time::Instant;

fn main() {
    let ds = rknn::data::gaussian_blobs(800, 4, 6, 0.5, 9).into_shared();
    let mut index = CoverTree::build(ds, Euclidean);
    let (k, t, threads) = (10, 50.0, 4);

    let start = Instant::now();
    let mut stream =
        MaintainedStream::new(RdtAlgorithm::new(RdtParams::new(k, t)), &index, threads);
    let seed_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "seeded all-points RkNN table over {} points in {seed_ms:.1} ms",
        stream.live()
    );

    // Stream phase: each arriving point's reverse neighborhood is exactly
    // the set of existing points whose k-NN lists the arrival invalidates;
    // the stream repairs those answers (and only those) on the spot.
    let mut rng = SmallRng::seed_from_u64(1);
    println!("processing 60 insertions...");
    let (mut affected_total, mut recomputed_total, mut update_ms) = (0usize, 0usize, 0.0f64);
    for _ in 0..60 {
        let new_point: Vec<f64> = (0..4).map(|_| rng.random::<f64>() * 10.0).collect();
        let (_, report) = stream.insert(&mut index, &new_point).expect("valid point");
        affected_total += report.affected;
        recomputed_total += report.recomputed;
        update_ms += report.elapsed.as_secs_f64() * 1e3;
    }
    println!(
        "  mean #points whose k-NN changed per insertion: {:.2}",
        affected_total as f64 / 60.0
    );
    println!(
        "  mean #answers repaired per insertion: {:.1} (of {} maintained)",
        recomputed_total as f64 / 60.0,
        stream.live()
    );

    // Deletion phase: a removed point affects exactly its reverse
    // neighbors (they must refill their k-NN lists); the stream already
    // holds that set — its own maintained answer for the victim.
    println!("processing 30 deletions...");
    let mut affected_total = 0usize;
    for victim in 0..30usize {
        let report = stream.remove(&mut index, victim).expect("victim is live");
        affected_total += report.affected;
        update_ms += report.elapsed.as_secs_f64() * 1e3;
    }
    println!(
        "  mean #points whose k-NN changed per deletion: {:.2}",
        affected_total as f64 / 30.0
    );
    println!("index now holds {} live points", index.num_points());

    // Consistency check: rebuilding the whole answer table from scratch on
    // the churned index gives byte-identical answers for every live point.
    let queries: Vec<PointId> = stream.answers().map(|(id, _)| id).collect();
    let start = Instant::now();
    let mut fresh = RdtAlgorithm::new(RdtParams::new(k, t));
    fresh.prepare(&index);
    let rebuilt = run_algorithm_batch(&fresh, &index, &queries, threads);
    let rebuild_ms = start.elapsed().as_secs_f64() * 1e3;
    for (&q, want) in queries.iter().zip(&rebuilt.answers) {
        let got = stream.answer(q).expect("maintained");
        assert_eq!(got.ids(), want.ids(), "maintained diverged at q={q}");
    }
    let mean_update = update_ms / 90.0;
    println!("maintained table identical to a fresh rebuild — done");
    println!(
        "  mean update {mean_update:.2} ms vs rebuild {rebuild_ms:.1} ms \
         ({:.3}x per update)",
        mean_update / rebuild_ms
    );
}
