//! Exploring intrinsic dimensionality: how the estimators of §6 see
//! datasets whose representational and intrinsic dimensions differ, and
//! how the estimate steers RDT's scale parameter.
//!
//! ```text
//! cargo run --release --example intrinsic_dim
//! ```

use rknn::lid::{GpEstimator, HillEstimator, IdEstimator, TakensEstimator};
use rknn::prelude::*;
use rknn::rdt::{RdtParams, ScalePolicy};

fn main() {
    let n = 2500;
    let sets: Vec<(&str, rknn::core::Dataset)> = vec![
        ("uniform 2-d", rknn::data::uniform_cube(n, 2, 1)),
        ("2-d manifold in 64-d", {
            rknn::data::embedded_manifold(rknn::data::ManifoldSpec::flat(n, 64, 2, 2))
        }),
        ("8-d manifold in 256-d", {
            rknn::data::embedded_manifold(rknn::data::ManifoldSpec::flat(n, 256, 8, 3))
        }),
        ("MNIST-like (784-d)", rknn::data::mnist_like(n, 4)),
    ];

    let hill = HillEstimator::new();
    let gp = GpEstimator::new();
    let takens = TakensEstimator::new();
    println!(
        "{:<24} {:>4} {:>8} {:>8} {:>8}",
        "dataset", "D", "MLE", "GP", "Takens"
    );
    let mut shared = Vec::new();
    for (name, ds) in sets {
        let ds = ds.into_shared();
        let m = hill.estimate(&ds, &Euclidean);
        let g = gp.estimate(&ds, &Euclidean);
        let t = takens.estimate(&ds, &Euclidean);
        println!(
            "{name:<24} {:>4} {:>8.2} {:>8.2} {:>8.2}",
            ds.dim(),
            m.id,
            g.id,
            t.id
        );
        shared.push((name, ds));
    }

    // Use the GP estimate to parameterize RDT+ on the MNIST-like set and
    // show the cost difference against a naive choice t = D.
    let (_, ds) = shared.pop().expect("mnist-like present");
    let index = LinearScan::build(ds.clone(), Euclidean);
    let t_est = ScalePolicy::Gp(GpEstimator::new()).resolve(&ds, &Euclidean);
    println!("\nMNIST-like: GP-chosen t = {t_est:.2}");
    for (label, t) in [("estimated t", t_est), ("large t (no early stop)", 20.0)] {
        let rdt = RdtPlus::new(RdtParams::new(10, t));
        let ans = rdt.query(&index, 0);
        println!(
            "  {label:<26} -> retrieved {:>5} candidates, {:>2} verification kNN queries, \
             {:>9} distance comps",
            ans.stats.retrieved,
            ans.stats.verified,
            ans.stats.total_dist_comps()
        );
    }
    println!(
        "\nSmall estimated t probes a much smaller neighborhood but leaves more \
         candidates to explicit kNN verification; large t pays witness maintenance \
         on a larger filter set instead. These are exactly the conflicting cost \
         influences behind the time/accuracy tradeoff curves of Figures 3-6 (§8.1), \
         and the estimators aim at the knee between them."
    );
}
