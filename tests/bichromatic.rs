//! Cross-crate tests of the bichromatic RDT extension at realistic scale
//! (the services/clients scenario from the paper's introduction).

use rknn::prelude::*;
use rknn::rdt::{bichromatic::bichromatic_brute, BichromaticRdt, RdtParams};
use std::collections::HashSet;

#[test]
fn facility_influence_exact_at_high_t_over_cover_trees() {
    let households = rknn::data::sequoia_like(2500, 601).into_shared();
    let facilities = rknn::data::sequoia_like(80, 602).into_shared();
    let hh = CoverTree::build(households.clone(), Euclidean);
    let fac = CoverTree::build(facilities.clone(), Euclidean);
    let handle = BichromaticRdt::new(RdtParams::new(3, 30.0));
    for f in [0usize, 40, 79] {
        let q = facilities.point(f).to_vec();
        let got = handle.query(&fac, &hh, &q, Some(f)).ids();
        let want: Vec<_> = bichromatic_brute(&facilities, &households, &Euclidean, &q, 3, Some(f))
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(got, want, "facility {f}");
    }
}

#[test]
fn bichromatic_tradeoff_mirrors_monochromatic() {
    // Lower t terminates the client stream earlier; recall is monotone and
    // precision stays perfect (the bichromatic engine's accepts are
    // certificates, like plain RDT's).
    let services = rknn::data::gaussian_blobs(600, 3, 6, 0.5, 603).into_shared();
    let clients = rknn::data::gaussian_blobs(900, 3, 6, 0.5, 604).into_shared();
    let is = LinearScan::build(services.clone(), Euclidean);
    let ic = LinearScan::build(clients.clone(), Euclidean);
    let q = services.point(10).to_vec();
    let truth: HashSet<_> = bichromatic_brute(&services, &clients, &Euclidean, &q, 4, Some(10))
        .iter()
        .map(|n| n.id)
        .collect();
    let mut prev_recall = 0.0;
    let mut prev_retrieved = 0usize;
    for t in [1.5, 3.0, 6.0, 20.0] {
        let ans = BichromaticRdt::new(RdtParams::new(4, t)).query(&is, &ic, &q, Some(10));
        for n in &ans.result {
            assert!(truth.contains(&n.id), "false positive at t={t}");
        }
        let recall = if truth.is_empty() {
            1.0
        } else {
            ans.result.iter().filter(|n| truth.contains(&n.id)).count() as f64 / truth.len() as f64
        };
        assert!(recall >= prev_recall - 0.05, "recall regressed at t={t}");
        // Retrieval depth (not total work — verification shifts costs) is
        // monotone in t.
        assert!(
            ans.stats.retrieved >= prev_retrieved,
            "retrieval shrank at t={t}"
        );
        prev_recall = prev_recall.max(recall);
        prev_retrieved = ans.stats.retrieved;
    }
    assert!(
        (prev_recall - 1.0).abs() < 1e-12,
        "exhaustive t reaches full recall"
    );
}

#[test]
fn asymmetric_set_sizes() {
    // Tiny service set, large client set — the regime where bichromatic
    // queries are actually used (few facilities, many customers).
    let services = rknn::data::uniform_cube(12, 2, 605).into_shared();
    let clients = rknn::data::uniform_cube(2000, 2, 606).into_shared();
    let is = LinearScan::build(services.clone(), Euclidean);
    let ic = LinearScan::build(clients.clone(), Euclidean);
    let q = services.point(0).to_vec();
    // k = 1: clients whose nearest facility is facility 0.
    let got = BichromaticRdt::new(RdtParams::new(1, 20.0))
        .query(&is, &ic, &q, Some(0))
        .ids();
    let want: Vec<_> = bichromatic_brute(&services, &clients, &Euclidean, &q, 1, Some(0))
        .iter()
        .map(|n| n.id)
        .collect();
    assert_eq!(got, want);
    // Voronoi-cell sanity: with 12 facilities over a uniform cube, facility
    // 0's cell should hold very roughly 1/12 of the clients.
    assert!(got.len() > 30, "cell unexpectedly small: {}", got.len());
}
