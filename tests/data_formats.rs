//! Workspace-level property tests for the interchange-format loaders:
//! write→read roundtrips, typed errors (never panics) on corrupt input,
//! and determinism of the seeded downsampler/dim-slicer.

use proptest::prelude::*;
use rknn::data::formats::{
    read_bvecs, read_fvecs, read_idx, read_ivecs, write_fvecs, write_idx, write_ivecs,
};
use rknn::data::io::IoError;
use rknn::data::{downsample, slice_dims, LoadOptions};
use rknn::prelude::Dataset;

/// Row sets whose every coordinate survives an f32 cast bit-exactly, so
/// the fvecs roundtrip can assert full equality instead of tolerance.
fn arb_f32_rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..6).prop_flat_map(|dim| {
        proptest::collection::vec(
            proptest::collection::vec((-1000f32..1000f32).prop_map(|v| v as f64), dim),
            1..40,
        )
    })
}

fn arb_int_rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..6).prop_flat_map(|dim| {
        proptest::collection::vec(
            proptest::collection::vec((0u32..200_000).prop_map(|v| v as f64 - 100_000.0), dim),
            1..40,
        )
    })
}

fn arb_f64_rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..6).prop_flat_map(|dim| {
        proptest::collection::vec(proptest::collection::vec(-1e12f64..1e12, dim), 1..40)
    })
}

fn rows_of(ds: &Dataset) -> Vec<Vec<f64>> {
    ds.iter().map(|(_, p)| p.to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// fvecs write→read is exact for f32-representable data, and
    /// `--limit`/`--dims`-style options slice the stream on the way in.
    #[test]
    fn fvecs_roundtrips_and_slices(rows in arb_f32_rows(), limit in 1usize..50, dims in 1usize..8) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut buf = Vec::new();
        write_fvecs(&ds, &mut buf).unwrap();
        let back = read_fvecs(&buf[..], &LoadOptions::all()).unwrap();
        prop_assert_eq!(rows_of(&back), rows.clone());

        let opts = LoadOptions::all().with_limit(limit).with_dims(dims);
        let cut = read_fvecs(&buf[..], &opts).unwrap();
        let want_n = limit.min(rows.len());
        let want_d = dims.min(rows[0].len());
        prop_assert_eq!((cut.len(), cut.dim()), (want_n, want_d));
        for (i, row) in rows.iter().enumerate().take(want_n) {
            prop_assert_eq!(cut.point(i), &row[..want_d]);
        }
    }

    /// ivecs roundtrips integer data exactly.
    #[test]
    fn ivecs_roundtrips(rows in arb_int_rows()) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut buf = Vec::new();
        write_ivecs(&ds, &mut buf).unwrap();
        let back = read_ivecs(&buf[..], &LoadOptions::all()).unwrap();
        prop_assert_eq!(rows_of(&back), rows);
    }

    /// idx (f64 dtype) is the lossless carrier: any finite data roundtrips
    /// bit-exactly.
    #[test]
    fn idx_roundtrips_losslessly(rows in arb_f64_rows()) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut buf = Vec::new();
        write_idx(&ds, &mut buf).unwrap();
        let back = read_idx(&buf[..], &LoadOptions::all()).unwrap();
        prop_assert_eq!(rows_of(&back), rows);
    }

    /// Arbitrary bytes fed to every reader produce `Ok` or a typed error —
    /// never a panic, never a runaway allocation.
    #[test]
    fn readers_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_fvecs(&bytes[..], &LoadOptions::all());
        let _ = read_ivecs(&bytes[..], &LoadOptions::all());
        let _ = read_bvecs(&bytes[..], &LoadOptions::all());
        let _ = read_idx(&bytes[..], &LoadOptions::all());
    }

    /// Truncating a valid fvecs stream anywhere inside a record yields the
    /// typed `Truncated` error naming that record.
    #[test]
    fn truncation_is_reported_with_the_record(rows in arb_f32_rows(), cut_back in 1usize..16) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let mut buf = Vec::new();
        write_fvecs(&ds, &mut buf).unwrap();
        let cut = cut_back.min(buf.len() - 1).max(1);
        let short = &buf[..buf.len() - cut];
        match read_fvecs(short, &LoadOptions::all()) {
            Err(IoError::Truncated { record }) => prop_assert!(record < rows.len()),
            // Cutting exactly at a record boundary removes whole trailing
            // records; the shorter read must still be a prefix.
            Ok(back) => {
                prop_assert!(back.len() < rows.len());
                for (i, row) in rows.iter().enumerate().take(back.len()) {
                    prop_assert_eq!(back.point(i), &row[..]);
                }
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// The seeded downsampler is deterministic, a subset of the source
    /// rows, and sensitive to the seed once there is room to differ.
    #[test]
    fn downsample_is_deterministic(rows in arb_f64_rows(), n in 1usize..40, seed in any::<u64>()) {
        let ds = Dataset::from_rows(&rows).unwrap();
        let a = downsample(&ds, n, seed);
        let b = downsample(&ds, n, seed);
        prop_assert_eq!(rows_of(&a), rows_of(&b));
        prop_assert_eq!(a.len(), n.min(ds.len()));
        let source: std::collections::HashSet<Vec<u64>> = rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_bits()).collect())
            .collect();
        for (_, p) in a.iter() {
            let key: Vec<u64> = p.iter().map(|v| v.to_bits()).collect();
            prop_assert!(source.contains(&key), "downsample invented a row");
        }
        let sliced = slice_dims(&ds, 1);
        prop_assert_eq!(sliced.dim(), 1);
        prop_assert_eq!(sliced.len(), ds.len());
    }
}

#[test]
fn corrupt_headers_yield_typed_errors() {
    // fvecs dim mismatch mid-stream.
    let mut buf = Vec::new();
    write_fvecs(&Dataset::from_rows(&[vec![1.0, 2.0]]).unwrap(), &mut buf).unwrap();
    buf.extend(3i32.to_le_bytes());
    buf.extend([0u8; 12]);
    match read_fvecs(&buf[..], &LoadOptions::all()) {
        Err(IoError::DimMismatch {
            record,
            expected,
            got,
        }) => assert_eq!((record, expected, got), (1, 2, 3)),
        other => panic!("expected DimMismatch, got {other:?}"),
    }

    // An implausibly large fvecs dimension is rejected before allocating.
    let mut huge = Vec::new();
    huge.extend(i32::MAX.to_le_bytes());
    assert!(matches!(
        read_fvecs(&huge[..], &LoadOptions::all()),
        Err(IoError::Format(_))
    ));

    // idx magic and dtype corruption.
    assert!(matches!(
        read_idx(&[1u8, 2, 3, 4][..], &LoadOptions::all()),
        Err(IoError::BadMagic(_))
    ));
    assert!(matches!(
        read_idx(&[0u8, 0, 0x42, 1, 0, 0, 0, 1][..], &LoadOptions::all()),
        Err(IoError::UnsupportedDtype(0x42))
    ));

    // NaN coordinates are a typed NonFinite naming point and coordinate.
    let mut nan = Vec::new();
    nan.extend(2i32.to_le_bytes());
    nan.extend(1.0f32.to_le_bytes());
    nan.extend(f32::NAN.to_le_bytes());
    match read_fvecs(&nan[..], &LoadOptions::all()) {
        Err(IoError::NonFinite { point, coordinate }) => {
            assert_eq!((point, coordinate), (0, 1))
        }
        other => panic!("expected NonFinite, got {other:?}"),
    }
}
