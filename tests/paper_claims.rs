//! End-to-end checks of the paper's qualitative claims, at test scale.
//! The full-size counterparts live in the `rknn-bench` harness binaries;
//! these assertions keep the claims from silently regressing.

use rknn::baselines::{MRkNNCoP, RdnnTree, Sft};
use rknn::prelude::*;
use rknn::rdt::{Rdt, RdtParams, RdtPlus};
use std::collections::HashSet;
use std::sync::Arc;

fn truth_sets(
    ds: &Arc<rknn::core::Dataset>,
    queries: &[PointId],
    k: usize,
) -> Vec<HashSet<PointId>> {
    let bf = BruteForce::new(ds.clone(), Euclidean);
    let mut st = SearchStats::new();
    queries
        .iter()
        .map(|&q| bf.rknn(q, k, &mut st).iter().map(|n| n.id).collect())
        .collect()
}

fn mean_recall(answers: impl Iterator<Item = Vec<PointId>>, truths: &[HashSet<PointId>]) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for (ans, truth) in answers.zip(truths) {
        hits += ans.iter().filter(|id| truth.contains(id)).count();
        total += truth.len();
    }
    if total == 0 {
        1.0
    } else {
        hits as f64 / total as f64
    }
}

#[test]
fn recall_grows_with_t_and_reaches_one() {
    // §8.1: "mean recall rates achieved by RDT+, RDT and SFT grow
    // monotonically with the choices of the respective parameters".
    let ds = rknn::data::sequoia_like(1500, 401).into_shared();
    let idx = CoverTree::build(ds.clone(), Euclidean);
    let queries = rknn::data::sample_queries(ds.len(), 15, 1);
    let k = 10;
    let truths = truth_sets(&ds, &queries, k);
    let mut last = 0.0;
    for t in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let rdt = RdtPlus::new(RdtParams::new(k, t));
        let r = mean_recall(queries.iter().map(|&q| rdt.query(&idx, q).ids()), &truths);
        assert!(r >= last - 0.05, "recall regressed at t={t}: {r} < {last}");
        last = last.max(r);
    }
    assert!(last >= 0.99, "recall saturates near 1, got {last}");
}

#[test]
fn rdt_needs_fewer_candidates_than_sft_at_matched_recall() {
    // §9: at an equal number of processed candidates the methods answer
    // identically, but RDT adapts its candidate budget to the local
    // distance distribution. Verify the practical consequence: at matched
    // recall ≥ 0.95, RDT+'s candidate count is competitive with SFT's.
    let ds = rknn::data::aloi_like(1200, 402).into_shared();
    let idx = CoverTree::build(ds.clone(), Euclidean);
    let queries = rknn::data::sample_queries(ds.len(), 10, 2);
    let k = 10;
    let truths = truth_sets(&ds, &queries, k);

    let mut rdt_candidates = None;
    for t in [2.0, 3.0, 4.0, 6.0, 8.0, 12.0] {
        let rdt = RdtPlus::new(RdtParams::new(k, t));
        let mut total_retrieved = 0usize;
        let answers: Vec<_> = queries
            .iter()
            .map(|&q| {
                let a = rdt.query(&idx, q);
                total_retrieved += a.stats.retrieved;
                a.ids()
            })
            .collect();
        if mean_recall(answers.into_iter(), &truths) >= 0.95 {
            rdt_candidates = Some(total_retrieved);
            break;
        }
    }
    let mut sft_candidates = None;
    let mut st = SearchStats::new();
    for alpha in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let sft = Sft::new(k, alpha);
        let answers: Vec<_> = queries
            .iter()
            .map(|&q| {
                sft.query(&idx, q, &mut st)
                    .iter()
                    .map(|n| n.id)
                    .collect::<Vec<_>>()
            })
            .collect();
        if mean_recall(answers.into_iter(), &truths) >= 0.95 {
            sft_candidates = Some(sft.candidate_budget() * queries.len());
            break;
        }
    }
    let (rdt_c, sft_c) = (
        rdt_candidates.expect("RDT+ reaches 0.95 recall"),
        sft_candidates.expect("SFT reaches 0.95 recall"),
    );
    assert!(
        rdt_c <= sft_c * 2,
        "RDT+ candidate budget should be competitive: {rdt_c} vs SFT {sft_c}"
    );
}

#[test]
fn exact_methods_pay_orders_of_magnitude_more_precompute() {
    // Figures 3–6's right-hand panels: heuristic setup (index build) is
    // orders of magnitude cheaper than RdNN/MRkNNCoP precomputation.
    let ds = rknn::data::fct_like(2000, 403).into_shared();
    let start = std::time::Instant::now();
    let forward = CoverTree::build(ds.clone(), Euclidean);
    let rdt_setup = start.elapsed();
    let rdnn = RdnnTree::build(ds.clone(), Euclidean, 10, &forward);
    let mrk = MRkNNCoP::build(ds.clone(), Euclidean, 10, &forward);
    assert!(
        rdnn.precompute_time() > rdt_setup * 2,
        "RdNN precompute {:?} should dwarf index build {:?}",
        rdnn.precompute_time(),
        rdt_setup
    );
    assert!(mrk.precompute_time() > rdt_setup * 2);
}

#[test]
fn lazy_rejection_dominates_at_large_t() {
    // Figure 7: "for increasingly large numbers of candidates, the
    // majority of points are rejected by this mechanism".
    let ds = rknn::data::sequoia_like(2000, 404).into_shared();
    let idx = CoverTree::build(ds.clone(), Euclidean);
    let rdt = RdtPlus::new(RdtParams::new(10, 12.0));
    let queries = rknn::data::sample_queries(ds.len(), 10, 3);
    let mut reject = 0.0;
    let mut verify = 0.0;
    let mut accept = 0.0;
    for &q in &queries {
        let (v, a, r) = rdt.query(&idx, q).stats.proportions();
        verify += v;
        accept += a;
        reject += r;
    }
    assert!(
        reject > verify && reject > accept,
        "rejection must dominate at t=12: verify={verify} accept={accept} reject={reject}"
    );
}

#[test]
fn rdt_plus_reduces_filter_cost_on_high_dim_data() {
    // §4.3: RDT+ exists to keep witness maintenance affordable on large
    // high-dimensional data.
    let ds = rknn::data::mnist_like(800, 405).into_shared();
    let idx = LinearScan::build(ds.clone(), Euclidean);
    let params = RdtParams::new(10, 8.0);
    let queries = rknn::data::sample_queries(ds.len(), 8, 4);
    let mut plain_cost = 0u64;
    let mut plus_cost = 0u64;
    for &q in &queries {
        plain_cost += Rdt::new(params).query(&idx, q).stats.witness_pairs;
        plus_cost += RdtPlus::new(params).query(&idx, q).stats.witness_pairs;
    }
    assert!(
        plus_cost <= plain_cost,
        "RDT+ witness cost {plus_cost} must not exceed RDT {plain_cost}"
    );
}
