//! Cross-substrate cursor-stream equivalence through the shared traversal
//! core.
//!
//! Every tree substrate's incremental stream is pinned against the
//! linear scan on a tie-heavy half-integer grid (the adversarial case for
//! best-first ordering and for any strict-inequality threshold test):
//!
//! * **exact nondecreasing order** — distances never decrease along the
//!   stream;
//! * **each id exactly once** — the stream is a permutation of the point
//!   set (minus the excluded id);
//! * **bit-identical distances** — sorted by `(distance, id)`, every tree
//!   stream equals the linear scan's table bit for bit (tree cursors may
//!   legitimately order *equal* distances differently, since a tied point
//!   inside an unexpanded subtree surfaces after an already-queued tie);
//! * **identical `exclude` handling** — the excluded id never surfaces, on
//!   any entry point;
//! * the **scratch-reusing entry point** (`cursor_with`) yields the byte-
//!   identical sequence to the boxed entry point (`cursor`), query after
//!   query on one reused buffer;
//! * the **bounded entry point** (`cursor_bounded`) yields exactly the
//!   unbounded stream's prefix — frontier pruning may only discard entries
//!   past the drain bound;
//! * the sequential scan's **SIMD tile fast path** (contiguous padded
//!   dataset streamed through `Metric::dist_tile`) is byte-identical —
//!   streams, direct traversals, and work counters — to its per-point
//!   fallback (forced via the dynamic pool).
//!
//! All assertions run on whatever kernel backend dispatch selects; CI
//! reruns this suite with `RKNN_KERNEL=scalar` (and `RKNN_KERNEL=avx2` on
//! capable hosts) pinned, so the same byte-identity contracts are checked
//! under every backend.

use proptest::prelude::*;
use rknn_core::{CursorScratch, Dataset, Euclidean, Neighbor, SearchStats};
use rknn_index::{BallTree, CoverTree, DynamicIndex, KnnIndex, LinearScan, MTree, RTree, VpTree};
use std::sync::Arc;

/// Builds a dataset on the half-integer grid `{0, 0.5, …, 4}` from raw
/// proptest levels, so duplicate points and tied distances are common.
fn grid_dataset(levels: &[u8], dim: usize) -> Arc<Dataset> {
    let n = levels.len() / dim;
    let coords: Vec<f64> = levels[..n * dim]
        .iter()
        .map(|&v| f64::from(v % 9) * 0.5)
        .collect();
    Dataset::from_flat(dim, coords)
        .expect("grid coordinates are finite")
        .into_shared()
}

fn substrates(ds: &Arc<Dataset>) -> Vec<Box<dyn KnnIndex<Euclidean>>> {
    vec![
        Box::new(CoverTree::build(ds.clone(), Euclidean)),
        Box::new(VpTree::build(ds.clone(), Euclidean)),
        Box::new(BallTree::build(ds.clone(), Euclidean)),
        Box::new(MTree::build(ds.clone(), Euclidean)),
        Box::new(RTree::build(ds.clone(), Euclidean)),
    ]
}

fn drain(cur: &mut dyn rknn_index::NnCursor, cap: usize) -> Vec<Neighbor> {
    let mut out = Vec::new();
    while out.len() < cap {
        match cur.next() {
            Some(n) => out.push(n),
            None => break,
        }
    }
    out
}

#[test]
fn overflowing_distances_stay_in_every_stream() {
    // Finite coordinates at ±1e200 make squared-distance accumulation
    // overflow to +∞. Completeness ("each id exactly once") must survive:
    // no entry point may silently drop the overflowing point.
    let ds = Dataset::from_rows(&[
        vec![0.0, 0.0],
        vec![1.0, 0.0],
        vec![2.0, 1.0],
        vec![1e200, -1e200],
    ])
    .unwrap()
    .into_shared();
    let q = [0.25, 0.0];
    let linear = LinearScan::build(ds.clone(), Euclidean);
    let mut scratch = CursorScratch::new();
    let mut all: Vec<Box<dyn KnnIndex<Euclidean>>> = substrates(&ds);
    all.push(Box::new(linear));
    for idx in &all {
        let boxed = drain(&mut *idx.cursor(&q, None), usize::MAX);
        let scratched = drain(&mut *idx.cursor_with(&q, None, &mut scratch), usize::MAX);
        let bounded = drain(&mut *idx.cursor_bounded(&q, None, 4, &mut scratch), 4);
        for drained in [boxed, scratched, bounded] {
            assert_eq!(drained.len(), 4, "{}: lost a point", idx.name());
            assert!(
                drained.last().unwrap().dist.is_infinite(),
                "{}: overflowing distance must surface last",
                idx.name()
            );
        }
        let mut stats = rknn_core::SearchStats::new();
        assert_eq!(
            idx.knn(&q, 4, None, &mut stats).len(),
            4,
            "{}: knn",
            idx.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tree_streams_are_equivalent_to_the_linear_scan(
        levels in proptest::collection::vec(0u8..9, 24..120),
        dim in 1usize..5,
        q_sel in 0usize..64,
        exclude_query in 0usize..2,
    ) {
        let ds = grid_dataset(&levels, dim);
        let q_id = q_sel % ds.len();
        let q = ds.point(q_id).to_vec();
        let exclude = (exclude_query == 1).then_some(q_id);
        let expected_len = ds.len() - usize::from(exclude.is_some());

        // The linear scan's table is the reference: ascending (dist, id).
        let linear = LinearScan::build(ds.clone(), Euclidean);
        let reference = drain(&mut *linear.cursor(&q, exclude), usize::MAX);
        prop_assert_eq!(reference.len(), expected_len);

        let mut scratch = CursorScratch::new();
        for idx in substrates(&ds) {
            let name = idx.name();
            let boxed = drain(&mut *idx.cursor(&q, exclude), usize::MAX);
            let scratched = drain(&mut *idx.cursor_with(&q, exclude, &mut scratch), usize::MAX);

            // Boxed and scratch-reusing paths: byte-identical sequences.
            prop_assert_eq!(boxed.len(), scratched.len(), "{}", name);
            for (b, s) in boxed.iter().zip(&scratched) {
                prop_assert_eq!(b.id, s.id, "{}", name);
                prop_assert_eq!(b.dist.to_bits(), s.dist.to_bits(), "{}", name);
            }

            // Exact nondecreasing order, each id exactly once, exclusion.
            prop_assert_eq!(boxed.len(), expected_len, "{}: completeness", name);
            let mut seen = std::collections::HashSet::new();
            let mut prev = f64::NEG_INFINITY;
            for n in &boxed {
                prop_assert!(Some(n.id) != exclude, "{}: excluded id surfaced", name);
                prop_assert!(seen.insert(n.id), "{}: duplicate id {}", name, n.id);
                prop_assert!(n.dist >= prev, "{}: order violated", name);
                prev = n.dist;
            }

            // Sorted by (dist, id), the stream is bit-identical to the
            // linear scan's distance table.
            let mut sorted = boxed.clone();
            rknn_core::neighbor::sort_neighbors(&mut sorted);
            for (s, r) in sorted.iter().zip(&reference) {
                prop_assert_eq!(s.id, r.id, "{}: id set diverged", name);
                prop_assert_eq!(
                    s.dist.to_bits(), r.dist.to_bits(),
                    "{}: distance bits diverged", name
                );
            }

            // Bounded streams are exact prefixes of the unbounded stream.
            for limit in [0usize, 1, 3, expected_len / 2, expected_len, expected_len + 7] {
                let bounded =
                    drain(&mut *idx.cursor_bounded(&q, exclude, limit, &mut scratch), limit);
                prop_assert_eq!(
                    bounded.len(), limit.min(expected_len),
                    "{} limit={}", name, limit
                );
                for (i, (b, f)) in bounded.iter().zip(&boxed).enumerate() {
                    prop_assert_eq!(b.id, f.id, "{} limit={} step={}", name, limit, i);
                    prop_assert_eq!(
                        b.dist.to_bits(), f.dist.to_bits(),
                        "{} limit={} step={}", name, limit, i
                    );
                }
            }
        }
    }

    #[test]
    fn scan_tile_fast_path_matches_per_point_fallback(
        levels in proptest::collection::vec(0u8..9, 24..120),
        dim in 1usize..5,
        q_sel in 0usize..64,
        exclude_query in 0usize..2,
        limit_sel in 0usize..16,
        r_level in 0u8..12,
    ) {
        // Same live point set, two execution paths: a pristine scan
        // streams the padded contiguous dataset through `dist_tile`; a
        // scan that saw one insert-then-remove holds a tombstone, so its
        // pool is no longer the bare dataset and every query takes the
        // per-point fallback. Results, streams, and counters must be
        // byte-identical.
        let ds = grid_dataset(&levels, dim);
        let q_id = q_sel % ds.len();
        let q = ds.point(q_id).to_vec();
        let exclude = (exclude_query == 1).then_some(q_id);
        let tile = LinearScan::build(ds.clone(), Euclidean);
        let mut fallback = LinearScan::build(ds.clone(), Euclidean);
        let tomb = fallback.insert(&vec![0.25; dim]).expect("insert");
        prop_assert!(fallback.remove(tomb));
        prop_assert!(tile.base_rows().is_some(), "pristine scan must expose tile rows");
        prop_assert!(fallback.base_rows().is_none(), "tombstoned scan must not");

        // Unbounded streams.
        let a = drain(&mut *tile.cursor(&q, exclude), usize::MAX);
        let b = drain(&mut *fallback.cursor(&q, exclude), usize::MAX);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.dist.to_bits(), y.dist.to_bits());
        }

        // Bounded streams with identical work counters.
        let mut s1 = CursorScratch::new();
        let mut s2 = CursorScratch::new();
        let limit = limit_sel % (ds.len() + 2);
        let mut c1 = tile.cursor_bounded(&q, exclude, limit, &mut s1);
        let mut c2 = fallback.cursor_bounded(&q, exclude, limit, &mut s2);
        loop {
            let (x, y) = (c1.next(), c2.next());
            prop_assert_eq!(x.map(|n| n.id), y.map(|n| n.id));
            prop_assert_eq!(
                x.map(|n| n.dist.to_bits()),
                y.map(|n| n.dist.to_bits())
            );
            if x.is_none() {
                break;
            }
        }
        prop_assert_eq!(c1.stats(), c2.stats(), "bounded-cursor stats diverged");
        drop(c1);
        drop(c2);

        // Direct traversals: knn, range, range_count (closed and strict),
        // including their distance-computation counters.
        let k = (limit_sel % 7) + 1;
        let mut st1 = SearchStats::new();
        let mut st2 = SearchStats::new();
        let nn1 = tile.knn(&q, k, exclude, &mut st1);
        let nn2 = fallback.knn(&q, k, exclude, &mut st2);
        prop_assert_eq!(st1, st2, "knn stats diverged");
        prop_assert_eq!(nn1.len(), nn2.len());
        for (x, y) in nn1.iter().zip(&nn2) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.dist.to_bits(), y.dist.to_bits());
        }
        let r = f64::from(r_level) * 0.5;
        let w1 = tile.range(&q, r, exclude, &mut st1);
        let w2 = fallback.range(&q, r, exclude, &mut st2);
        prop_assert_eq!(w1.len(), w2.len(), "range sets diverged at r={}", r);
        for (x, y) in w1.iter().zip(&w2) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.dist.to_bits(), y.dist.to_bits());
        }
        for strict in [false, true] {
            prop_assert_eq!(
                tile.range_count(&q, r, strict, exclude, &mut st1),
                fallback.range_count(&q, r, strict, exclude, &mut st2),
                "range_count diverged at r={} strict={}", r, strict
            );
        }
    }
}
