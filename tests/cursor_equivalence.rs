//! Cross-substrate cursor-stream equivalence through the shared traversal
//! core.
//!
//! Every tree substrate's incremental stream is pinned against the
//! linear scan on a tie-heavy half-integer grid (the adversarial case for
//! best-first ordering and for any strict-inequality threshold test):
//!
//! * **exact nondecreasing order** — distances never decrease along the
//!   stream;
//! * **each id exactly once** — the stream is a permutation of the point
//!   set (minus the excluded id);
//! * **bit-identical distances** — sorted by `(distance, id)`, every tree
//!   stream equals the linear scan's table bit for bit (tree cursors may
//!   legitimately order *equal* distances differently, since a tied point
//!   inside an unexpanded subtree surfaces after an already-queued tie);
//! * **identical `exclude` handling** — the excluded id never surfaces, on
//!   any entry point;
//! * the **scratch-reusing entry point** (`cursor_with`) yields the byte-
//!   identical sequence to the boxed entry point (`cursor`), query after
//!   query on one reused buffer;
//! * the **bounded entry point** (`cursor_bounded`) yields exactly the
//!   unbounded stream's prefix — frontier pruning may only discard entries
//!   past the drain bound.

use proptest::prelude::*;
use rknn_core::{CursorScratch, Dataset, Euclidean, Neighbor};
use rknn_index::{BallTree, CoverTree, KnnIndex, LinearScan, MTree, RTree, VpTree};
use std::sync::Arc;

/// Builds a dataset on the half-integer grid `{0, 0.5, …, 4}` from raw
/// proptest levels, so duplicate points and tied distances are common.
fn grid_dataset(levels: &[u8], dim: usize) -> Arc<Dataset> {
    let n = levels.len() / dim;
    let coords: Vec<f64> = levels[..n * dim]
        .iter()
        .map(|&v| f64::from(v % 9) * 0.5)
        .collect();
    Dataset::from_flat(dim, coords)
        .expect("grid coordinates are finite")
        .into_shared()
}

fn substrates(ds: &Arc<Dataset>) -> Vec<Box<dyn KnnIndex<Euclidean>>> {
    vec![
        Box::new(CoverTree::build(ds.clone(), Euclidean)),
        Box::new(VpTree::build(ds.clone(), Euclidean)),
        Box::new(BallTree::build(ds.clone(), Euclidean)),
        Box::new(MTree::build(ds.clone(), Euclidean)),
        Box::new(RTree::build(ds.clone(), Euclidean)),
    ]
}

fn drain(cur: &mut dyn rknn_index::NnCursor, cap: usize) -> Vec<Neighbor> {
    let mut out = Vec::new();
    while out.len() < cap {
        match cur.next() {
            Some(n) => out.push(n),
            None => break,
        }
    }
    out
}

#[test]
fn overflowing_distances_stay_in_every_stream() {
    // Finite coordinates at ±1e200 make squared-distance accumulation
    // overflow to +∞. Completeness ("each id exactly once") must survive:
    // no entry point may silently drop the overflowing point.
    let ds = Dataset::from_rows(&[
        vec![0.0, 0.0],
        vec![1.0, 0.0],
        vec![2.0, 1.0],
        vec![1e200, -1e200],
    ])
    .unwrap()
    .into_shared();
    let q = [0.25, 0.0];
    let linear = LinearScan::build(ds.clone(), Euclidean);
    let mut scratch = CursorScratch::new();
    let mut all: Vec<Box<dyn KnnIndex<Euclidean>>> = substrates(&ds);
    all.push(Box::new(linear));
    for idx in &all {
        let boxed = drain(&mut *idx.cursor(&q, None), usize::MAX);
        let scratched = drain(&mut *idx.cursor_with(&q, None, &mut scratch), usize::MAX);
        let bounded = drain(&mut *idx.cursor_bounded(&q, None, 4, &mut scratch), 4);
        for drained in [boxed, scratched, bounded] {
            assert_eq!(drained.len(), 4, "{}: lost a point", idx.name());
            assert!(
                drained.last().unwrap().dist.is_infinite(),
                "{}: overflowing distance must surface last",
                idx.name()
            );
        }
        let mut stats = rknn_core::SearchStats::new();
        assert_eq!(
            idx.knn(&q, 4, None, &mut stats).len(),
            4,
            "{}: knn",
            idx.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tree_streams_are_equivalent_to_the_linear_scan(
        levels in proptest::collection::vec(0u8..9, 24..120),
        dim in 1usize..5,
        q_sel in 0usize..64,
        exclude_query in 0usize..2,
    ) {
        let ds = grid_dataset(&levels, dim);
        let q_id = q_sel % ds.len();
        let q = ds.point(q_id).to_vec();
        let exclude = (exclude_query == 1).then_some(q_id);
        let expected_len = ds.len() - usize::from(exclude.is_some());

        // The linear scan's table is the reference: ascending (dist, id).
        let linear = LinearScan::build(ds.clone(), Euclidean);
        let reference = drain(&mut *linear.cursor(&q, exclude), usize::MAX);
        prop_assert_eq!(reference.len(), expected_len);

        let mut scratch = CursorScratch::new();
        for idx in substrates(&ds) {
            let name = idx.name();
            let boxed = drain(&mut *idx.cursor(&q, exclude), usize::MAX);
            let scratched = drain(&mut *idx.cursor_with(&q, exclude, &mut scratch), usize::MAX);

            // Boxed and scratch-reusing paths: byte-identical sequences.
            prop_assert_eq!(boxed.len(), scratched.len(), "{}", name);
            for (b, s) in boxed.iter().zip(&scratched) {
                prop_assert_eq!(b.id, s.id, "{}", name);
                prop_assert_eq!(b.dist.to_bits(), s.dist.to_bits(), "{}", name);
            }

            // Exact nondecreasing order, each id exactly once, exclusion.
            prop_assert_eq!(boxed.len(), expected_len, "{}: completeness", name);
            let mut seen = std::collections::HashSet::new();
            let mut prev = f64::NEG_INFINITY;
            for n in &boxed {
                prop_assert!(Some(n.id) != exclude, "{}: excluded id surfaced", name);
                prop_assert!(seen.insert(n.id), "{}: duplicate id {}", name, n.id);
                prop_assert!(n.dist >= prev, "{}: order violated", name);
                prev = n.dist;
            }

            // Sorted by (dist, id), the stream is bit-identical to the
            // linear scan's distance table.
            let mut sorted = boxed.clone();
            rknn_core::neighbor::sort_neighbors(&mut sorted);
            for (s, r) in sorted.iter().zip(&reference) {
                prop_assert_eq!(s.id, r.id, "{}: id set diverged", name);
                prop_assert_eq!(
                    s.dist.to_bits(), r.dist.to_bits(),
                    "{}: distance bits diverged", name
                );
            }

            // Bounded streams are exact prefixes of the unbounded stream.
            for limit in [0usize, 1, 3, expected_len / 2, expected_len, expected_len + 7] {
                let bounded =
                    drain(&mut *idx.cursor_bounded(&q, exclude, limit, &mut scratch), limit);
                prop_assert_eq!(
                    bounded.len(), limit.min(expected_len),
                    "{} limit={}", name, limit
                );
                for (i, (b, f)) in bounded.iter().zip(&boxed).enumerate() {
                    prop_assert_eq!(b.id, f.id, "{} limit={} step={}", name, limit, i);
                    prop_assert_eq!(
                        b.dist.to_bits(), f.dist.to_bits(),
                        "{} limit={} step={}", name, limit, i
                    );
                }
            }
        }
    }
}
