//! Workspace-level property-based tests: randomized point sets, random
//! parameters, invariants from the paper's analysis.

use proptest::prelude::*;
use rknn::baselines::NaiveRknn;
use rknn::prelude::*;
use rknn::rdt::{Rdt, RdtParams, RdtPlus};
use std::collections::HashSet;

fn arb_points(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec(-50.0f64..50.0, dim),
        (dim + 3)..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// RDT never reports a non-member, at any t (its accepts are
    /// certificates: either Assertion 2 or an explicit verification).
    #[test]
    fn rdt_has_perfect_precision(
        pts in arb_points(60, 2),
        k in 1usize..6,
        t_scaled in 5u32..120,
        qi in 0usize..60,
    ) {
        let t = t_scaled as f64 / 10.0;
        let ds = Dataset::from_rows(&pts).unwrap().into_shared();
        let q = qi % ds.len();
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        let truth: HashSet<_> = bf.rknn(q, k, &mut st).iter().map(|n| n.id).collect();
        let ans = Rdt::new(RdtParams::new(k, t)).query(&idx, q);
        for n in &ans.result {
            prop_assert!(truth.contains(&n.id), "false positive {} at t={t} k={k}", n.id);
        }
    }

    /// At an exhaustive t the filter phase sees everything, so plain RDT is
    /// exact. RDT+ guarantees *recall* only: its exclusions remove witness
    /// providers, so lazy accepts can act on undercounted witness sets and
    /// admit false positives — the precision drop §4.3 trades for speed.
    #[test]
    fn rdt_exhaustive_matches_truth(
        pts in arb_points(50, 3),
        k in 1usize..5,
        qi in 0usize..50,
    ) {
        let ds = Dataset::from_rows(&pts).unwrap().into_shared();
        let q = qi % ds.len();
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        let truth: Vec<_> = bf.rknn(q, k, &mut st).iter().map(|n| n.id).collect();
        let params = RdtParams::new(k, 60.0);
        let plain = Rdt::new(params).query(&idx, q);
        prop_assert_eq!(&plain.ids(), &truth);
        let stats = &plain.stats;
        prop_assert_eq!(
            stats.verified + stats.lazy_accepts + stats.lazy_rejects + stats.excluded,
            stats.retrieved
        );
        let plus = RdtPlus::new(params).query(&idx, q);
        let plus_ids: std::collections::HashSet<_> = plus.ids().into_iter().collect();
        for id in &truth {
            prop_assert!(plus_ids.contains(id), "RDT+ missed true member {id}");
        }
    }

    /// The naive index-served method equals the O(n²) brute force for any
    /// random configuration (they share no code path beyond the metric).
    #[test]
    fn naive_equals_brute(
        pts in arb_points(40, 2),
        k in 1usize..5,
        qi in 0usize..40,
    ) {
        let ds = Dataset::from_rows(&pts).unwrap().into_shared();
        let q = qi % ds.len();
        let idx = CoverTree::build(ds.clone(), Euclidean);
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        let a: Vec<_> = NaiveRknn::new(k).query(&idx, q, &mut st).iter().map(|n| n.id).collect();
        let b: Vec<_> = bf.rknn(q, k, &mut st).iter().map(|n| n.id).collect();
        prop_assert_eq!(a, b);
    }

    /// Monotonicity: enlarging k can only grow the reverse neighborhood.
    #[test]
    fn rknn_monotone_in_k(
        pts in arb_points(40, 2),
        qi in 0usize..40,
    ) {
        let ds = Dataset::from_rows(&pts).unwrap().into_shared();
        let q = qi % ds.len();
        let bf = BruteForce::new(ds, Euclidean);
        let mut st = SearchStats::new();
        let small: HashSet<_> = bf.rknn(q, 2, &mut st).iter().map(|n| n.id).collect();
        let large: HashSet<_> = bf.rknn(q, 4, &mut st).iter().map(|n| n.id).collect();
        prop_assert!(small.is_subset(&large));
    }

    /// Dynamic cover-tree inserts preserve exact kNN semantics.
    #[test]
    fn dynamic_inserts_preserve_knn(
        pts in arb_points(40, 2),
        extra in proptest::collection::vec(proptest::collection::vec(-50.0f64..50.0, 2), 1..10),
    ) {
        use rknn::index::DynamicIndex;
        let ds = Dataset::from_rows(&pts).unwrap().into_shared();
        let mut tree = CoverTree::build(ds.clone(), Euclidean);
        for p in &extra {
            tree.insert(p).unwrap();
        }
        // Rebuild from scratch over the union; kNN distance multisets match.
        let mut all = pts.clone();
        all.extend(extra.iter().cloned());
        let full = Dataset::from_rows(&all).unwrap().into_shared();
        let reference = LinearScan::build(full.clone(), Euclidean);
        let mut st = SearchStats::new();
        let q = full.point(0).to_vec();
        let a = tree.knn(&q, 5, Some(0), &mut st);
        let b = reference.knn(&q, 5, Some(0), &mut st);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.dist - y.dist).abs() < 1e-9);
        }
    }
}
