//! Bit-identity property tests for the distance-kernel subsystem.
//!
//! The contract under test (see `rknn_core::kernel`): the scalar-unrolled
//! reference, SSE2 and AVX2 backends share one canonical 4-lane blocked
//! accumulation order and one early-abandonment check cadence, so
//!
//! * full reductions return **identical bits** on every backend;
//! * early-abandoning reductions return identical `None`/`Some(bits)`;
//! * `dist`/`dist_lt`/`dist_le`/`dist_under` on the Minkowski family are
//!   decision-equivalent with bit-identical carried values;
//! * `dist_tile` over zero-padded rows reproduces the one-to-one
//!   `dist_under` decision and value for every row, on the padded SIMD
//!   path and the unpadded fallback path alike —
//!
//! across ordinary coordinates, exact ties, subnormal gaps, and
//! coordinates whose squared/cubed terms overflow to `+∞`.
//!
//! CI additionally reruns this suite (and the cursor/algorithm equivalence
//! suites) with `RKNN_KERNEL=scalar` and — on capable hosts —
//! `RKNN_KERNEL=avx2` pinned, so the dispatched path itself is exercised
//! under every backend; `kernel_env_override_is_honored` asserts the pin
//! took effect.
//!
//! The **fast-tier suite** at the bottom covers the opt-in tier beyond
//! the bit-identity wall: fast reductions are ULP-bounded against the
//! exact scalar reference (subnormal and overflow classes included), the
//! squared-domain threshold variants are decision-equivalent with the
//! tier's own `dist`, the fast tile reproduces per-row decisions bitwise
//! *within* the tier, and an end-to-end RDT run under [`Euclidean::fast`]
//! returns the exact tier's answer sets on tie-free data. CI reruns the
//! equivalence suites with `RKNN_KERNEL_TIER=fast` pinned on FMA hosts.

use proptest::prelude::*;
use rknn::core::kernel::{self, Backend};
use rknn::core::{Chebyshev, Euclidean, Manhattan, Metric, Minkowski};

fn metrics() -> Vec<Box<dyn Metric>> {
    vec![
        Box::new(Euclidean),
        Box::new(Manhattan),
        Box::new(Chebyshev),
        Box::new(Minkowski::new(3.0)),
        Box::new(Minkowski::new(1.5)),
    ]
}

/// Mixes raw draws into coordinates covering ties (coarse grid),
/// subnormal-scale gaps, and magnitudes whose squared/cubed terms overflow
/// to `+∞` (predates the stand-in's `prop_oneof!`, so the class selection
/// is a second drawn vector; the fast-tier suite below uses the macro).
fn mix(vals: &[f64], classes: &[u32]) -> Vec<f64> {
    vals.iter()
        .zip(classes)
        .map(|(&v, &c)| match c % 6 {
            0 => (v * 2.0).round() * 0.5,          // tie-prone half grid
            1 => (v.abs().round() % 5.0) * 1e-310, // subnormal gaps
            2 => 1e160,                            // term overflow
            3 => -1e160,
            _ => v / 0.997,
        })
        .collect()
}

fn vec_of(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, len)
}

fn classes_of(len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..6, len)
}

fn opt_bits(o: Option<f64>) -> Option<u64> {
    o.map(f64::to_bits)
}

proptest! {
    #[test]
    fn backends_agree_bitwise_on_raw_kernels(
        len in 0usize..40,
        seed_a in vec_of(40),
        seed_b in vec_of(40),
        class_a in classes_of(40),
        class_b in classes_of(40),
        frac in 0.0f64..2.0,
    ) {
        let a = &mix(&seed_a, &class_a)[..len];
        let b = &mix(&seed_b, &class_b)[..len];
        let reference = kernel::ops(Backend::Scalar).expect("scalar always available");
        let full = reference.sum_sq(a, b);
        // Thresholds straddling the completed value plus the exact tie.
        let thresholds = [0.0, full * frac, full, f64::INFINITY];
        for be in kernel::available() {
            let o = kernel::ops(be).expect("listed backend available");
            prop_assert_eq!(o.sum_sq(a, b).to_bits(), reference.sum_sq(a, b).to_bits());
            prop_assert_eq!(o.sum_abs(a, b).to_bits(), reference.sum_abs(a, b).to_bits());
            prop_assert_eq!(o.max_abs(a, b).to_bits(), reference.max_abs(a, b).to_bits());
            for &t in &thresholds {
                prop_assert_eq!(
                    opt_bits(o.sum_sq_until(a, b, t)),
                    opt_bits(reference.sum_sq_until(a, b, t)),
                    "sum_sq_until {:?} t={}", be, t
                );
                prop_assert_eq!(
                    opt_bits(o.sum_abs_until(a, b, t)),
                    opt_bits(reference.sum_abs_until(a, b, t)),
                    "sum_abs_until {:?} t={}", be, t
                );
                prop_assert_eq!(
                    opt_bits(o.max_abs_until(a, b, t)),
                    opt_bits(reference.max_abs_until(a, b, t)),
                    "max_abs_until {:?} t={}", be, t
                );
            }
        }
    }

    #[test]
    fn threshold_variants_are_decision_equivalent_with_dist(
        len in 1usize..40,
        seed_a in vec_of(40),
        seed_b in vec_of(40),
        class_a in classes_of(40),
        class_b in classes_of(40),
        frac in 0.0f64..2.0,
    ) {
        let a = &mix(&seed_a, &class_a)[..len];
        let b = &mix(&seed_b, &class_b)[..len];
        for m in metrics() {
            let d = m.dist(a, b);
            for bound in [0.0, d * frac, d, f64::INFINITY] {
                // dist_lt: strict decision, bit-identical carried value.
                let lt = m.dist_lt(a, b, bound);
                if d < bound {
                    prop_assert_eq!(opt_bits(lt), Some(d.to_bits()), "{} lt", m.name());
                } else {
                    prop_assert_eq!(lt, None, "{} lt bound={}", m.name(), bound);
                }
                // dist_le: closed-ball decision.
                let le = m.dist_le(a, b, bound);
                if d <= bound {
                    prop_assert_eq!(opt_bits(le), Some(d.to_bits()), "{} le", m.name());
                } else {
                    prop_assert_eq!(le, None, "{} le bound={}", m.name(), bound);
                }
                // dist_under: selection semantics (+∞ admits everything,
                // including overflowing distances).
                let under = m.dist_under(a, b, bound);
                if bound == f64::INFINITY || d < bound {
                    prop_assert_eq!(opt_bits(under), Some(d.to_bits()), "{} under", m.name());
                } else {
                    prop_assert_eq!(under, None, "{} under bound={}", m.name(), bound);
                }
            }
        }
    }

    #[test]
    fn dist_tile_reproduces_per_row_decisions_bitwise(
        dim in 1usize..12,
        raw_rows in proptest::collection::vec(vec_of(12), 1..24),
        row_classes in proptest::collection::vec(classes_of(12), 24),
        q_seed in vec_of(12),
        q_class in classes_of(12),
        fracs in proptest::collection::vec(0.0f64..2.0, 24),
    ) {
        let rows: Vec<Vec<f64>> = raw_rows
            .iter()
            .zip(&row_classes)
            .map(|(r, c)| mix(r, c))
            .collect();
        let q_full = mix(&q_seed, &q_class);
        let q = &q_full[..dim];
        let stride = kernel::pad_dim(dim);
        let mut flat = vec![0.0; rows.len() * stride];
        for (r, row) in rows.iter().enumerate() {
            flat[r * stride..r * stride + dim].copy_from_slice(&row[..dim]);
        }
        let mut qpad = vec![0.0; stride];
        qpad[..dim].copy_from_slice(q);
        for m in metrics() {
            let bounds: Vec<f64> = rows
                .iter()
                .zip(&fracs)
                .enumerate()
                .map(|(i, (row, &f))| match i % 4 {
                    0 => m.dist(q, &row[..dim]),   // exact tie → pruned
                    1 => f64::INFINITY,            // always admitted
                    _ => m.dist(q, &row[..dim]) * f,
                })
                .collect();
            let mut out = vec![0.0; rows.len()];
            // Padded SIMD layout.
            m.dist_tile(&qpad, &flat, stride, dim, &bounds, &mut out);
            // Unpadded layout (exercises the row-by-row fallback).
            let flat_raw: Vec<f64> = rows.iter().flat_map(|r| r[..dim].to_vec()).collect();
            let mut out_raw = vec![0.0; rows.len()];
            m.dist_tile(q, &flat_raw, dim, dim, &bounds, &mut out_raw);
            for (i, row) in rows.iter().enumerate() {
                match m.dist_under(q, &row[..dim], bounds[i]) {
                    Some(d) => {
                        prop_assert_eq!(out[i].to_bits(), d.to_bits(),
                            "{} row {} padded", m.name(), i);
                        prop_assert_eq!(out_raw[i].to_bits(), d.to_bits(),
                            "{} row {} fallback", m.name(), i);
                    }
                    None => {
                        prop_assert!(out[i].is_nan(), "{} row {} padded", m.name(), i);
                        prop_assert!(out_raw[i].is_nan(), "{} row {} fallback", m.name(), i);
                    }
                }
            }
        }
    }
}

/// When CI pins a backend via `RKNN_KERNEL`, dispatch must honor it (the
/// suite is then genuinely running on that backend). Without the variable
/// the dispatched backend must be the best available one.
#[test]
fn kernel_env_override_is_honored() {
    let selected = kernel::selected().backend();
    match std::env::var("RKNN_KERNEL").ok().as_deref() {
        Some("scalar") => assert_eq!(selected, Backend::Scalar),
        Some("sse2") if kernel::ops(Backend::Sse2).is_some() => {
            assert_eq!(selected, Backend::Sse2)
        }
        Some("avx2") if kernel::ops(Backend::Avx2).is_some() => {
            assert_eq!(selected, Backend::Avx2)
        }
        _ => assert_eq!(selected, kernel::available()[0]),
    }
    assert!(kernel::available().contains(&selected));
}

// ---------------------------------------------------------------------------
// Fast-tier suite: ULP-bounded values, identical decisions.
// ---------------------------------------------------------------------------

/// One coordinate drawn from mixed float classes via `prop_oneof!`:
/// ordinary values, the tie-prone half grid, subnormal-scale gaps, and
/// overflow-scale magnitudes.
fn fast_coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        -100.0f64..100.0,
        (-100.0f64..100.0).prop_map(|v| (v * 2.0).round() * 0.5),
        (0.0f64..5.0).prop_map(|v| v.round() * 1e-310),
        Just(1e160),
        Just(-1e160),
    ]
}

fn fast_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(fast_coord(), len)
}

/// Relative gap between two non-negative values in ulps of the reference.
fn ulp_gap(got: f64, want: f64) -> u64 {
    if got.to_bits() == want.to_bits() {
        return 0;
    }
    if got.is_nan() || want.is_nan() || got.is_sign_negative() || want.is_sign_negative() {
        return u64::MAX;
    }
    got.to_bits().abs_diff(want.to_bits())
}

proptest! {
    /// The fast tier's value contract: reassociating a non-negative sum
    /// under FMA perturbs it by O(len·ε) relative — bounded here by a
    /// generous `8·(len+4)` ulps against the exact scalar reference, with
    /// overflow saturating both tiers identically and zero padding to the
    /// storage stride remaining bit-invariant *within* the tier.
    #[test]
    fn fast_reductions_are_ulp_bounded_against_the_exact_scalar_reference(
        len in 0usize..40,
        seed_a in fast_vec(40),
        seed_b in fast_vec(40),
    ) {
        let a = &seed_a[..len];
        let b = &seed_b[..len];
        let f = kernel::fast_ops();
        let want = kernel::ops(Backend::Scalar).expect("scalar").sum_sq(a, b);
        let got = f.sum_sq(a, b);
        if want.is_infinite() {
            prop_assert_eq!(got, want, "len={}", len);
        } else {
            let tol = 8 * (len as u64 + 4);
            prop_assert!(
                ulp_gap(got, want) <= tol,
                "len={}: fast {:e} vs exact {:e}", len, got, want
            );
        }
        let mut ap = seed_a[..len].to_vec();
        let mut bp = seed_b[..len].to_vec();
        ap.resize(kernel::pad_dim(len), 0.0);
        bp.resize(kernel::pad_dim(len), 0.0);
        prop_assert_eq!(
            f.sum_sq(&ap, &bp).to_bits(),
            got.to_bits(),
            "len={}: fast zero padding must be bit-invariant", len
        );
    }

    /// The fast tier's decision contract: `dist_lt`/`dist_le`/`dist_under`
    /// screen in the squared domain (no sqrt on rejection) yet decide
    /// exactly as a distance-domain comparison against the tier's own
    /// `dist` — for thresholds below, at, and above the distance.
    #[test]
    fn fast_euclidean_threshold_variants_are_decision_equivalent(
        len in 1usize..40,
        seed_a in fast_vec(40),
        seed_b in fast_vec(40),
        frac in 0.0f64..2.0,
    ) {
        let a = &seed_a[..len];
        let b = &seed_b[..len];
        let m = Euclidean::fast();
        let d = m.dist(a, b);
        let exact_d = Euclidean::exact().dist(a, b);
        if exact_d.is_infinite() {
            prop_assert_eq!(d, exact_d);
        } else {
            prop_assert!(
                ulp_gap(d, exact_d) <= 8 * (len as u64 + 4),
                "len={}: fast dist {:e} vs exact {:e}", len, d, exact_d
            );
        }
        for bound in [0.0, d * frac, d, f64::INFINITY] {
            let lt = m.dist_lt(a, b, bound);
            if d < bound {
                prop_assert_eq!(opt_bits(lt), Some(d.to_bits()), "lt bound={}", bound);
            } else {
                prop_assert_eq!(lt, None, "lt bound={}", bound);
            }
            let le = m.dist_le(a, b, bound);
            if d <= bound {
                prop_assert_eq!(opt_bits(le), Some(d.to_bits()), "le bound={}", bound);
            } else {
                prop_assert_eq!(le, None, "le bound={}", bound);
            }
            let under = m.dist_under(a, b, bound);
            if bound == f64::INFINITY || d < bound {
                prop_assert_eq!(opt_bits(under), Some(d.to_bits()), "under bound={}", bound);
            } else {
                prop_assert_eq!(under, None, "under bound={}", bound);
            }
        }
    }

    /// Within the fast tier, the tile path over zero-padded rows
    /// reproduces the one-to-one `dist_under` decision and bits for every
    /// row — the positional-lane FMA layout makes padding a no-op, so the
    /// tier needs no tile-vs-point tolerance.
    #[test]
    fn fast_dist_tile_reproduces_per_row_decisions_within_the_tier(
        dim in 1usize..12,
        rows in proptest::collection::vec(fast_vec(12), 1..24),
        q_seed in fast_vec(12),
        fracs in proptest::collection::vec(0.0f64..2.0, 24),
    ) {
        let q = &q_seed[..dim];
        let stride = kernel::pad_dim(dim);
        let mut flat = vec![0.0; rows.len() * stride];
        for (r, row) in rows.iter().enumerate() {
            flat[r * stride..r * stride + dim].copy_from_slice(&row[..dim]);
        }
        let mut qpad = vec![0.0; stride];
        qpad[..dim].copy_from_slice(q);
        let m = Euclidean::fast();
        let bounds: Vec<f64> = rows
            .iter()
            .zip(&fracs)
            .enumerate()
            .map(|(i, (row, &f))| match i % 4 {
                0 => m.dist(q, &row[..dim]),
                1 => f64::INFINITY,
                _ => m.dist(q, &row[..dim]) * f,
            })
            .collect();
        let mut out = vec![0.0; rows.len()];
        m.dist_tile(&qpad, &flat, stride, dim, &bounds, &mut out);
        for (i, row) in rows.iter().enumerate() {
            match m.dist_under(q, &row[..dim], bounds[i]) {
                Some(d) => prop_assert_eq!(
                    out[i].to_bits(), d.to_bits(), "row {} of {}", i, rows.len()
                ),
                None => prop_assert!(out[i].is_nan(), "row {} of {}", i, rows.len()),
            }
        }
    }
}

/// End-to-end: the full RDT engine under [`Euclidean::fast`] returns the
/// exact tier's answer sets on tie-free data (decisions have real margins
/// there, so ULP-level kernel divergence cannot flip them).
#[test]
fn fast_tier_rdt_answers_match_exact_on_tie_free_data() {
    use rknn::index::LinearScan;
    use rknn::rdt::batch::{run_all_points, BatchConfig};
    use rknn::rdt::RdtParams;

    let ds = rknn::data::gaussian_blobs(300, 8, 4, 0.3, 0x5eed).into_shared();
    let params = RdtParams::new(5, 4.0);
    let exact = run_all_points(
        &LinearScan::build(ds.clone(), Euclidean::exact()),
        params,
        &BatchConfig::sequential(),
    );
    let fast = run_all_points(
        &LinearScan::build(ds.clone(), Euclidean::fast()),
        params,
        &BatchConfig::sequential(),
    );
    assert_eq!(exact.answers.len(), fast.answers.len());
    for (q, (e, f)) in exact.answers.iter().zip(&fast.answers).enumerate() {
        assert_eq!(e.ids(), f.ids(), "fast tier diverged from exact at q={q}");
    }
}

/// The canonical-order invariant the padded storage relies on: appending
/// zero-gap coordinates to both operands never changes any reduction's
/// bits.
#[test]
fn zero_padding_is_bit_identity_on_every_backend() {
    let a = [0.5, -1.25, 1e-310, 1e160, 2.0, -3.5, 0.0];
    let b = [0.5, 2.75, 0.0, -1e160, 2.0, 1.5, -4.25];
    for extra in 1..=5usize {
        let mut ap = a.to_vec();
        let mut bp = b.to_vec();
        ap.resize(a.len() + extra, 0.0);
        bp.resize(b.len() + extra, 0.0);
        for be in kernel::available() {
            let o = kernel::ops(be).unwrap();
            assert_eq!(o.sum_sq(&ap, &bp).to_bits(), o.sum_sq(&a, &b).to_bits());
            assert_eq!(o.sum_abs(&ap, &bp).to_bits(), o.sum_abs(&a, &b).to_bits());
            assert_eq!(o.max_abs(&ap, &bp).to_bits(), o.max_abs(&a, &b).to_bits());
        }
        for m in metrics() {
            assert_eq!(
                m.dist(&ap, &bp).to_bits(),
                m.dist(&a, &b).to_bits(),
                "{}",
                m.name()
            );
        }
    }
}
