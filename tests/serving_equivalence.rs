//! Serving equivalence: the concurrent engine is **byte-identical** to the
//! sequential driver — for every algorithm, every worker count, under
//! backpressure, and across mid-stream snapshot swaps.
//!
//! The engine adds three things on top of the batch driver: sharded queues
//! with work stealing (arbitrary execution interleavings), epoch-pinned
//! snapshots (a query and a concurrently published successor must never
//! mix), and backpressure (rejected submissions must lose nothing). None
//! of them may change a single answer bit:
//!
//! 1. every method — naive, SFT, TPL, MRkNNCoP, RdNN-Tree, RDT, RDT+ —
//!    served through the engine at worker counts {1, 2, 5} returns the
//!    same ids and bit-identical distances as a sequential per-query loop,
//!    under adversarial submission orders (duplicates, shuffles) and queue
//!    capacities small enough to force saturation retries;
//! 2. a snapshot published mid-stream splits the responses cleanly: every
//!    response carries an epoch, its answer is byte-identical to the
//!    sequential reference *of that epoch alone*, and submissions made
//!    after the publish are answered under the new epoch — the warm-cache
//!    successor ([`rknn::serve::advance_snapshot`]) and a cold re-prepared
//!    snapshot both behave this way.
//!
//! Coordinates live on the tie-heavy half-integer grid (the adversarial
//! case for `(dist, id)` ordering), so any cross-epoch or cross-worker
//! leakage shows up as a bit difference immediately.

use proptest::prelude::*;
use rknn::baselines::{MrknncopAlgorithm, NaiveRknn, RdnnAlgorithm, Sft, TplAlgorithm};
use rknn::core::{Dataset, Euclidean, Neighbor, PointId};
use rknn::index::{KnnIndex, LinearScan};
use rknn::rdt::algorithm::{RdtAlgorithm, RknnAlgorithm};
use rknn::rdt::RdtParams;
use rknn::serve::{advance_snapshot, ChurnOp, Engine, EngineConfig, QueryError, Snapshot};
use std::sync::Arc;

/// Tie-heavy half-integer lattice rows.
fn grid_rows(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![((i * 7) % 9) as f64 * 0.5, ((i * 3 + 1) % 9) as f64 * 0.5])
        .collect()
}

fn grid_dataset(n: usize) -> Arc<Dataset> {
    Dataset::from_rows(&grid_rows(n))
        .expect("grid coordinates are finite")
        .into_shared()
}

type Digest = Vec<(PointId, u64)>;

fn digest(neighbors: &[Neighbor]) -> Digest {
    neighbors.iter().map(|n| (n.id, n.dist.to_bits())).collect()
}

/// Sequential per-query reference over all `n` points: one worker, one
/// thread, submission order irrelevant by construction.
fn sequential_reference<A>(algo: &A, index: &LinearScan<Euclidean>) -> Vec<Digest>
where
    A: RknnAlgorithm<Euclidean, LinearScan<Euclidean>>,
{
    use rknn::rdt::algorithm::AlgorithmAnswer;
    let mut worker = algo.make_worker(index);
    (0..index.num_points())
        .map(|q| digest(algo.query(index, q, &mut worker).neighbors()))
        .collect()
}

/// Submits `order` (retrying saturated submits so backpressure sheds no
/// work), waits for every ticket, and returns `(query, epoch, digest)`
/// in submission order.
fn drive<A>(
    engine: &Engine<Euclidean, LinearScan<Euclidean>, A>,
    order: &[PointId],
) -> (Vec<(PointId, u64, Digest)>, usize)
where
    A: RknnAlgorithm<Euclidean, LinearScan<Euclidean>> + Send + Sync + 'static,
{
    let mut tickets = Vec::with_capacity(order.len());
    let mut retries = 0usize;
    for &q in order {
        loop {
            match engine.submit(q) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(QueryError::Saturated { .. }) => {
                    retries += 1;
                    std::thread::yield_now();
                }
                Err(other) => panic!("unexpected submit error mid-test: {other}"),
            }
        }
    }
    let responses = tickets
        .into_iter()
        .map(|t| {
            let r = t.wait().expect("no faults injected: every ticket answers");
            let q = r.point_id().expect("point query echoes its id");
            (q, r.epoch, digest(&r.neighbors))
        })
        .collect();
    (responses, retries)
}

/// One algorithm through the engine vs its sequential reference.
fn assert_engine_matches_sequential<A, F>(
    make: F,
    ds: &Arc<Dataset>,
    workers: usize,
    queue_cap: usize,
    order: &[PointId],
    label: &str,
) where
    A: RknnAlgorithm<Euclidean, LinearScan<Euclidean>> + Send + Sync + 'static,
    F: Fn() -> A,
{
    let reference = {
        let index = LinearScan::build(ds.clone(), Euclidean);
        let mut algo = make();
        algo.prepare(&index);
        sequential_reference(&algo, &index)
    };
    let engine = Engine::new(
        Snapshot::prepare(0, LinearScan::build(ds.clone(), Euclidean), make()),
        EngineConfig {
            workers,
            queue_capacity: queue_cap,
            ..EngineConfig::default()
        },
    );
    let (responses, _retries) = drive(&engine, order);
    let stats = engine.shutdown();
    assert_eq!(
        responses.len(),
        order.len(),
        "{label}: every submission answered exactly once"
    );
    assert_eq!(stats.completed as usize, order.len());
    for (i, (query, epoch, got)) in responses.iter().enumerate() {
        assert_eq!(*query, order[i], "{label}: ticket order");
        assert_eq!(*epoch, 0, "{label}: single-snapshot run");
        assert_eq!(
            got, &reference[*query],
            "{label} workers={workers} q={query}: engine diverged from the sequential driver"
        );
    }
}

/// Raw proptest levels → an adversarial submission order over `0..n`
/// (duplicates and arbitrary shuffles included).
fn order_from(raw: &[u16], n: usize) -> Vec<PointId> {
    raw.iter().map(|&v| v as usize % n).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every algorithm, byte-identical through the concurrent executor at
    /// every worker count, under adversarial orderings and queue bounds
    /// tight enough to saturate.
    #[test]
    fn engine_is_byte_identical_to_the_sequential_driver(
        n in 24usize..48,
        k in 1usize..4,
        workers in prop_oneof![Just(1usize), Just(2), Just(5)],
        queue_cap in prop_oneof![Just(1usize), Just(2), Just(16)],
        raw_order in proptest::collection::vec(any::<u16>(), 24..64),
    ) {
        let ds = grid_dataset(n);
        let order = order_from(&raw_order, n);
        let k_max = k + 2;

        assert_engine_matches_sequential(
            || NaiveRknn::new(k), &ds, workers, queue_cap, &order, "naive");
        assert_engine_matches_sequential(
            || Sft::new(k, 3.0), &ds, workers, queue_cap, &order, "sft");
        assert_engine_matches_sequential(
            || TplAlgorithm::new(ds.clone(), Euclidean, k),
            &ds, workers, queue_cap, &order, "tpl");
        assert_engine_matches_sequential(
            || MrknncopAlgorithm::new(ds.clone(), Euclidean, k, k_max),
            &ds, workers, queue_cap, &order, "mrknncop");
        assert_engine_matches_sequential(
            || RdnnAlgorithm::new(ds.clone(), Euclidean, k),
            &ds, workers, queue_cap, &order, "rdnn");
        assert_engine_matches_sequential(
            || RdtAlgorithm::new(RdtParams::new(k, 50.0)),
            &ds, workers, queue_cap, &order, "rdt");
        assert_engine_matches_sequential(
            || RdtAlgorithm::plus(RdtParams::new(k, 4.0)),
            &ds, workers, queue_cap, &order, "rdt+");
    }

    /// A warm-cache successor published mid-stream: every response is
    /// consistent with exactly the epoch it reports, and submissions after
    /// the publish land on the new epoch.
    #[test]
    fn mid_stream_swap_splits_responses_by_epoch(
        n in 24usize..40,
        k in 1usize..4,
        workers in prop_oneof![Just(1usize), Just(2), Just(5)],
        raw_order in proptest::collection::vec(any::<u16>(), 30..60),
    ) {
        let ds = grid_dataset(n);
        let params = RdtParams::new(k, 50.0);
        // The last base id is the removal victim; queries stay on ids live
        // in *both* epochs.
        let victim = n - 1;
        let order = order_from(&raw_order, victim);

        // Epoch-0 reference.
        let index0 = LinearScan::build(ds.clone(), Euclidean);
        let mut ref_algo = RdtAlgorithm::new(params);
        ref_algo.prepare(&index0);
        let ref0 = sequential_reference(&ref_algo, &index0);

        let engine = Engine::new(
            Snapshot::prepare(0, LinearScan::build(ds.clone(), Euclidean), RdtAlgorithm::new(params)),
            EngineConfig { workers, queue_capacity: 8, ..EngineConfig::default() },
        );

        // Derive the epoch-1 successor off to the side (warm d_k cache),
        // and its own sequential reference, before publishing.
        let pinned = engine.snapshot();
        let ops = vec![
            ChurnOp::Insert(vec![0.5, 1.5]),
            ChurnOp::Remove(victim),
        ];
        let (next, report) = advance_snapshot(&pinned, &ops).expect("grid rows insert cleanly");
        prop_assert_eq!(next.epoch(), 1);
        prop_assert_eq!(&report.removed, &vec![victim]);
        let ref1 = {
            let mut cold = RdtAlgorithm::new(params);
            cold.prepare(next.index());
            sequential_reference(&cold, next.index())
        };

        let split = order.len() / 2;
        let (before, after) = order.split_at(split);
        let (mut responses, _) = drive(&engine, before);
        engine.publish(next);
        let (late, _) = drive(&engine, after);
        responses.extend(late);
        engine.shutdown();

        for (i, (query, epoch, got)) in responses.iter().enumerate() {
            prop_assert_eq!(*query, order[i]);
            let want = match epoch {
                0 => &ref0[*query],
                1 => &ref1[*query],
                other => panic!("unknown epoch {other}"),
            };
            prop_assert_eq!(
                got, want,
                "q={} answered under epoch {} but does not match that epoch's reference",
                query, epoch
            );
            // A submission made after the publish is dequeued after it too,
            // so it must see the successor.
            if i >= split {
                prop_assert_eq!(*epoch, 1u64, "post-publish submission pinned the old epoch");
            }
        }
    }
}

/// Epoch swaps are not RDT-specific: a cold re-prepared snapshot of any
/// algorithm publishes the same way. Scripted (not property-driven)
/// because the cold successor is just `Snapshot::prepare` again.
#[test]
fn cold_published_successor_serves_any_algorithm() {
    let n = 30;
    let k = 2;
    let ds0 = grid_dataset(n);
    // Epoch 1 drops the last row entirely (a rebuilt catalog, not churn).
    let ds1 = Dataset::from_rows(&grid_rows(n)[..n - 1])
        .expect("grid coordinates are finite")
        .into_shared();

    let index0 = LinearScan::build(ds0.clone(), Euclidean);
    let mut algo0 = NaiveRknn::new(k);
    algo0.prepare(&index0);
    let ref0 = sequential_reference(&algo0, &index0);
    let index1 = LinearScan::build(ds1.clone(), Euclidean);
    let mut algo1 = NaiveRknn::new(k);
    algo1.prepare(&index1);
    let ref1 = sequential_reference(&algo1, &index1);

    let engine = Engine::new(
        Snapshot::prepare(0, LinearScan::build(ds0, Euclidean), NaiveRknn::new(k)),
        EngineConfig {
            workers: 2,
            queue_capacity: 4,
            ..EngineConfig::default()
        },
    );
    let order: Vec<usize> = (0..n - 1).collect();
    let (early, _) = drive(&engine, &order);
    engine.publish(Snapshot::prepare(
        1,
        LinearScan::build(ds1, Euclidean),
        NaiveRknn::new(k),
    ));
    let (late, _) = drive(&engine, &order);
    engine.shutdown();

    for (query, epoch, got) in &early {
        let want = if *epoch == 0 { &ref0 } else { &ref1 };
        assert_eq!(got, &want[*query], "early q={query} epoch={epoch}");
    }
    for (query, epoch, got) in &late {
        assert_eq!(*epoch, 1, "post-publish submissions see the successor");
        assert_eq!(got, &ref1[*query], "late q={query}");
    }
}
