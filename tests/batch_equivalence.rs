//! Equivalence of the optimized execution paths with the sequential
//! scalar reference, across dimensions, metrics, and ranks.
//!
//! Two properties, per the batch-engine PR's acceptance:
//!
//! 1. the early-abandoning fast path (threshold-pruned metrics through the
//!    bounded cursor, witness pass, and verification) produces
//!    byte-identical result sets, terminations, and work counters to the
//!    same engine run with [`FullPrecision`]-wrapped metrics (every
//!    `dist_lt` falls back to the full scalar distance);
//! 2. the parallel batch driver produces byte-identical result sets,
//!    terminations, and — with `d_k` reuse disabled — work counters to the
//!    sequential per-query loop, at every worker count.
//!
//! Coordinates are drawn from a coarse half-integer grid so exact distance
//! ties (the adversarial case for any strict-inequality threshold test)
//! occur constantly.

use proptest::prelude::*;
use rknn_core::{Chebyshev, Dataset, Euclidean, FullPrecision, Manhattan, Metric, Minkowski};
use rknn_index::{KnnIndex, LinearScan};
use rknn_rdt::batch::{run_all_points, BatchConfig};
use rknn_rdt::engine::{run_query_scheduled, RdtVariant, TSchedule};
use rknn_rdt::RdtParams;
use std::sync::Arc;

/// Builds a dataset on the half-integer grid `{0, 0.5, …, 4}` from raw
/// proptest levels, so duplicate points and tied distances are common.
fn grid_dataset(levels: &[u8], dim: usize) -> Arc<Dataset> {
    let n = levels.len() / dim;
    let coords: Vec<f64> = levels[..n * dim]
        .iter()
        .map(|&v| f64::from(v % 9) * 0.5)
        .collect();
    Dataset::from_flat(dim, coords)
        .expect("grid coordinates are finite")
        .into_shared()
}

/// Runs every all-points query through the fast path and the
/// full-precision scalar path and demands byte-identical answers.
fn assert_fast_path_equivalence<M: Metric + Clone>(
    ds: Arc<Dataset>,
    metric: M,
    k: usize,
    t: f64,
    variant: RdtVariant,
) {
    let fast = LinearScan::build(ds.clone(), metric.clone());
    let scalar = LinearScan::build(ds.clone(), FullPrecision(metric));
    let params = RdtParams::new(k, t);
    for q in 0..ds.len() {
        let a = run_query_scheduled(
            &fast,
            fast.point(q),
            Some(q),
            params,
            variant,
            TSchedule::Fixed,
        );
        let b = run_query_scheduled(
            &scalar,
            scalar.point(q),
            Some(q),
            params,
            variant,
            TSchedule::Fixed,
        );
        prop_assert_eq!(a.ids(), b.ids(), "result sets diverged at q={}", q);
        for (x, y) in a.result.iter().zip(&b.result) {
            prop_assert_eq!(
                x.dist.to_bits(),
                y.dist.to_bits(),
                "distances diverged at q={}",
                q
            );
        }
        prop_assert_eq!(a.stats, b.stats, "stats diverged at q={}", q);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn fast_path_matches_scalar_path(
        levels in proptest::collection::vec(0u8..9, 24..96),
        dim in 1usize..5,
        k in 1usize..4,
        t_idx in 0usize..3,
        plus in 0usize..2,
    ) {
        let t = [1.5, 3.0, 8.0][t_idx];
        let variant = if plus == 1 { RdtVariant::Plus } else { RdtVariant::Plain };
        // 24+ levels at dim <= 4 always yield at least 6 points.
        let ds = grid_dataset(&levels, dim);
        assert_fast_path_equivalence(ds.clone(), Euclidean, k, t, variant);
        assert_fast_path_equivalence(ds.clone(), Manhattan, k, t, variant);
        assert_fast_path_equivalence(ds.clone(), Chebyshev, k, t, variant);
        assert_fast_path_equivalence(ds, Minkowski::new(2.5), k, t, variant);
    }

    #[test]
    fn batch_driver_matches_sequential_loop(
        levels in proptest::collection::vec(0u8..9, 30..90),
        dim in 1usize..4,
        k in 1usize..4,
        threads in 1usize..5,
        plus in 0usize..2,
    ) {
        let ds = grid_dataset(&levels, dim);
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let params = RdtParams::new(k, 4.0);
        let variant = if plus == 1 { RdtVariant::Plus } else { RdtVariant::Plain };

        // Work counters included: dk reuse off.
        let cfg = BatchConfig::default()
            .with_threads(threads)
            .with_variant(variant)
            .with_dk_reuse(false);
        let out = run_all_points(&idx, params, &cfg);
        prop_assert_eq!(out.answers.len(), ds.len());
        for (q, ans) in out.answers.iter().enumerate() {
            let want = run_query_scheduled(
                &idx, idx.point(q), Some(q), params, variant, TSchedule::Fixed,
            );
            prop_assert_eq!(ans.ids(), want.ids(), "threads={} q={}", threads, q);
            prop_assert_eq!(ans.stats, want.stats, "threads={} q={}", threads, q);
        }

        // With dk reuse: identical results and terminations, reduced or
        // equal index work.
        let cached = run_all_points(&idx, params, &cfg.with_dk_reuse(true));
        for (q, (a, b)) in cached.answers.iter().zip(&out.answers).enumerate() {
            prop_assert_eq!(a.ids(), b.ids(), "cached threads={} q={}", threads, q);
            prop_assert_eq!(
                a.stats.termination, b.stats.termination,
                "cached threads={} q={}", threads, q
            );
        }
        prop_assert!(
            cached.stats.search.dist_computations <= out.stats.search.dist_computations
        );
    }
}
