//! Workspace-level tests for the streaming `DatasetBuilder` path: chunked
//! appends must produce byte-identical storage to the one-shot
//! `Dataset::from_rows`, across chunkings and including the degenerate
//! shapes, with the builder's allocation accounting telling the truth.

use proptest::prelude::*;
use rknn::core::{Dataset, DatasetBuilder};

fn arb_rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..9).prop_flat_map(|dim| {
        proptest::collection::vec(proptest::collection::vec(-1e6f64..1e6, dim), 0..60)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any chunking of the row stream — including empty chunks — builds
    /// storage byte-identical (padding included) to the one-shot pack.
    #[test]
    fn chunked_build_is_byte_identical_to_from_rows(
        rows in arb_rows(),
        chunk_sizes in proptest::collection::vec(0usize..9, 1..12),
    ) {
        let dim = rows.first().map_or(1, |r| r.len());
        let mut b = DatasetBuilder::new(dim);
        let mut fed = 0usize;
        let mut flat = Vec::new();
        'outer: for &c in chunk_sizes.iter().cycle() {
            if fed >= rows.len() {
                break 'outer;
            }
            let take = c.min(rows.len() - fed);
            flat.clear();
            for r in &rows[fed..fed + take] {
                flat.extend_from_slice(r);
            }
            prop_assert_eq!(b.push_chunk(&flat).unwrap(), take);
            fed += take;
            if chunk_sizes.iter().all(|&s| s == 0) {
                break 'outer; // all-empty chunking cannot make progress
            }
        }
        // Feed any remainder row-by-row (covers the all-zero-chunks draw).
        for r in &rows[fed..] {
            b.push(r).unwrap();
        }
        let (streamed, stats) = b.build_counted();
        prop_assert_eq!(stats.rows, rows.len());

        if rows.is_empty() {
            prop_assert!(streamed.is_empty());
            prop_assert_eq!(stats.final_bytes, 0);
        } else {
            let packed = Dataset::from_rows(&rows).unwrap();
            prop_assert_eq!(streamed.len(), packed.len());
            prop_assert_eq!(streamed.dim(), packed.dim());
            prop_assert_eq!(streamed.stride(), packed.stride());
            // Byte identity over the padded storage, not just logical rows.
            let a: Vec<u64> = streamed.padded_flat().iter().map(|v| v.to_bits()).collect();
            let c: Vec<u64> = packed.padded_flat().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a, c);
        }
    }

    /// A presized builder never reallocates and peaks at exactly its final
    /// footprint; an unhinted builder's accounting covers the true peak.
    #[test]
    fn allocation_accounting_is_honest(rows in arb_rows()) {
        let dim = rows.first().map_or(1, |r| r.len());
        let mut presized = DatasetBuilder::with_capacity(dim, rows.len());
        let mut unhinted = DatasetBuilder::new(dim);
        for r in &rows {
            presized.push(r).unwrap();
            unhinted.push(r).unwrap();
        }
        let (pd, ps) = presized.build_counted();
        let (ud, us) = unhinted.build_counted();
        prop_assert_eq!(ps.reallocs, 0);
        prop_assert!(ps.peak_bytes >= ps.final_bytes);
        prop_assert!(us.peak_bytes >= us.final_bytes);
        prop_assert_eq!(ps.final_bytes, us.final_bytes);
        prop_assert_eq!(pd.len(), ud.len());
        if !rows.is_empty() {
            prop_assert_eq!(pd.storage_bytes(), ps.final_bytes);
        }
    }
}

#[test]
fn degenerate_shapes_build_cleanly() {
    // Zero rows → an empty dataset, stats all zero, ratio defined as 1.
    let (ds, stats) = DatasetBuilder::new(3).build_counted();
    assert!(ds.is_empty());
    assert_eq!((stats.rows, stats.final_bytes, stats.reallocs), (0, 0, 0));
    assert_eq!(stats.peak_ratio(), 1.0);

    // A single chunk holding the whole dataset equals from_rows.
    let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
    let mut b = DatasetBuilder::new(2);
    assert_eq!(b.push_chunk(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap(), 3);
    let streamed = b.build();
    let packed = Dataset::from_rows(&rows).unwrap();
    assert_eq!(streamed.padded_flat(), packed.padded_flat());

    // A ragged trailing chunk is rejected atomically: no rows appended.
    let mut b = DatasetBuilder::new(2);
    assert!(b.push_chunk(&[1.0, 2.0, 3.0]).is_err());
    assert!(b.is_empty());
}
