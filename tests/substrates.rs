//! Substrate-independence: RDT/RDT+ answers are a function of the point
//! set, not of the forward index serving the incremental stream.

use rknn::prelude::*;
use rknn::rdt::{Rdt, RdtParams, RdtPlus};
use std::sync::Arc;

fn dataset(seed: u64) -> Arc<rknn::core::Dataset> {
    rknn::data::fct_like(600, seed).into_shared()
}

#[test]
fn rdt_results_identical_across_six_substrates() {
    let ds = dataset(301);
    let cover = CoverTree::build(ds.clone(), Euclidean);
    let linear = LinearScan::build(ds.clone(), Euclidean);
    let vp = VpTree::build(ds.clone(), Euclidean);
    let rtree = RTree::build(ds.clone(), Euclidean);
    let mtree = MTree::build(ds.clone(), Euclidean);
    let ball = BallTree::build(ds.clone(), Euclidean);
    let rdt = Rdt::new(RdtParams::new(7, 9.0));
    for q in [0usize, 250, 599] {
        let reference = rdt.query(&linear, q).ids();
        assert_eq!(rdt.query(&cover, q).ids(), reference, "cover, q={q}");
        assert_eq!(rdt.query(&vp, q).ids(), reference, "vp, q={q}");
        assert_eq!(rdt.query(&rtree, q).ids(), reference, "rtree, q={q}");
        assert_eq!(rdt.query(&mtree, q).ids(), reference, "mtree, q={q}");
        assert_eq!(rdt.query(&ball, q).ids(), reference, "ball, q={q}");
    }
}

#[test]
fn rdt_plus_results_identical_across_substrates() {
    let ds = dataset(302);
    let cover = CoverTree::build(ds.clone(), Euclidean);
    let linear = LinearScan::build(ds.clone(), Euclidean);
    let plus = RdtPlus::new(RdtParams::new(10, 5.0));
    for q in [3usize, 300] {
        assert_eq!(
            plus.query(&cover, q).ids(),
            plus.query(&linear, q).ids(),
            "q={q}"
        );
    }
}

#[test]
fn cursor_streams_agree_on_distances() {
    // All six substrates must produce the same nondecreasing distance
    // multiset from the same query.
    let ds = dataset(303);
    let q = ds.point(42).to_vec();
    let cover = CoverTree::build(ds.clone(), Euclidean);
    let linear = LinearScan::build(ds.clone(), Euclidean);
    let vp = VpTree::build(ds.clone(), Euclidean);
    let rtree = RTree::build(ds.clone(), Euclidean);
    let mtree = MTree::build(ds.clone(), Euclidean);
    let ball = BallTree::build(ds.clone(), Euclidean);

    let drain = |cur: &mut dyn rknn::index::NnCursor| -> Vec<f64> {
        std::iter::from_fn(|| cur.next()).map(|n| n.dist).collect()
    };
    let reference = drain(&mut *linear.cursor(&q, Some(42)));
    assert_eq!(reference.len(), ds.len() - 1);
    for (name, dists) in [
        ("cover", drain(&mut *cover.cursor(&q, Some(42)))),
        ("vp", drain(&mut *vp.cursor(&q, Some(42)))),
        ("rtree", drain(&mut *rtree.cursor(&q, Some(42)))),
        ("mtree", drain(&mut *mtree.cursor(&q, Some(42)))),
        ("ball", drain(&mut *ball.cursor(&q, Some(42)))),
    ] {
        assert_eq!(dists.len(), reference.len(), "{name}: completeness");
        for (a, b) in dists.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-9, "{name}: distance stream mismatch");
        }
        assert!(
            dists.windows(2).all(|w| w[0] <= w[1] + 1e-12),
            "{name}: ordering"
        );
    }
}

#[test]
fn stats_reflect_substrate_efficiency() {
    // On low-intrinsic-dimensional data the cover tree must expand fewer
    // distances than the scan for small-radius work.
    let ds = rknn::data::sequoia_like(4000, 304).into_shared();
    let cover = CoverTree::build(ds.clone(), Euclidean);
    let linear = LinearScan::build(ds.clone(), Euclidean);
    let rdt = Rdt::new(RdtParams::new(10, 2.0));
    let a = rdt.query(&cover, 17);
    let b = rdt.query(&linear, 17);
    assert_eq!(a.ids(), b.ids());
    assert!(
        a.stats.search.dist_computations < b.stats.search.dist_computations,
        "cover tree {} vs scan {}",
        a.stats.search.dist_computations,
        b.stats.search.dist_computations
    );
}
