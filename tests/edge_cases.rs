//! Failure injection and degenerate-input behavior across the whole stack.

use rknn::baselines::{MRkNNCoP, NaiveRknn, RdnnTree, Sft, Tpl};
use rknn::index::DynamicIndex;
use rknn::prelude::*;
use rknn::rdt::{Rdt, RdtAdaptive, RdtParams, RdtPlus};
use std::sync::Arc;

fn duplicates_heavy() -> Arc<rknn::core::Dataset> {
    // 30 copies of one point, 30 of another, plus a few distinct points.
    let mut rows = vec![vec![0.0, 0.0]; 30];
    rows.extend(vec![vec![5.0, 5.0]; 30]);
    rows.push(vec![1.0, 0.0]);
    rows.push(vec![0.0, 1.5]);
    rows.push(vec![9.0, 9.0]);
    Dataset::from_rows(&rows).unwrap().into_shared()
}

#[test]
fn dataset_construction_rejects_bad_input() {
    assert!(Dataset::from_rows(&[vec![f64::NAN]]).is_err());
    assert!(Dataset::from_rows(&[vec![f64::INFINITY, 0.0]]).is_err());
    assert!(Dataset::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    assert!(Dataset::from_flat(0, vec![]).is_err());
    let mut b = DatasetBuilder::new(2);
    assert!(b.push(&[0.0, f64::NEG_INFINITY]).is_err());
    assert!(b.push(&[0.0]).is_err());
    assert!(b.push(&[0.0, 0.0]).is_ok());
}

#[test]
fn duplicates_are_consistent_across_all_methods() {
    let ds = duplicates_heavy();
    let forward = CoverTree::build(ds.clone(), Euclidean);
    let bf = BruteForce::new(ds.clone(), Euclidean);
    let mut st = SearchStats::new();
    let k = 5;
    // Query at a duplicate-pile member: with 30 co-located points and k=5,
    // behavior depends entirely on tie conventions — every method must
    // still agree with the brute-force reference.
    for q in [0usize, 35, 60] {
        let truth: Vec<_> = bf.rknn(q, k, &mut st).iter().map(|n| n.id).collect();
        let naive: Vec<_> = NaiveRknn::new(k)
            .query(&forward, q, &mut st)
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(naive, truth, "naive, q={q}");
        let rdt: Vec<_> = Rdt::new(RdtParams::new(k, 50.0)).query(&forward, q).ids();
        assert_eq!(rdt, truth, "rdt, q={q}");
        let mrk = MRkNNCoP::build(ds.clone(), Euclidean, k, &forward);
        let got: Vec<_> = mrk
            .query(q, k, &forward, &mut st)
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(got, truth, "mrknncop, q={q}");
        let rdnn = RdnnTree::build(ds.clone(), Euclidean, k, &forward);
        let got: Vec<_> = rdnn.query(q, &mut st).iter().map(|n| n.id).collect();
        assert_eq!(got, truth, "rdnn, q={q}");
        let tpl = Tpl::build(ds.clone(), Euclidean);
        let got: Vec<_> = tpl.query(q, k, &mut st).iter().map(|n| n.id).collect();
        assert_eq!(got, truth, "tpl, q={q}");
    }
}

#[test]
fn k_of_one_and_k_beyond_n() {
    let ds = rknn::data::uniform_cube(20, 2, 501).into_shared();
    let forward = LinearScan::build(ds.clone(), Euclidean);
    let bf = BruteForce::new(ds.clone(), Euclidean);
    let mut st = SearchStats::new();
    // k = 1.
    let truth: Vec<_> = bf.rknn(3, 1, &mut st).iter().map(|n| n.id).collect();
    assert_eq!(
        Rdt::new(RdtParams::new(1, 30.0)).query(&forward, 3).ids(),
        truth
    );
    // k ≥ n: everything is a reverse neighbor.
    let ans = RdtPlus::new(RdtParams::new(100, 5.0)).query(&forward, 3);
    assert_eq!(ans.result.len(), 19);
    let sft = Sft::new(100, 1.0);
    assert_eq!(sft.query(&forward, 3, &mut st).len(), 19);
    let rdnn = RdnnTree::build(ds.clone(), Euclidean, 100, &forward);
    assert_eq!(rdnn.query(3, &mut st).len(), 19);
}

#[test]
fn two_point_and_singleton_datasets() {
    let ds = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]])
        .unwrap()
        .into_shared();
    let forward = CoverTree::build(ds.clone(), Euclidean);
    let ans = Rdt::new(RdtParams::new(1, 10.0)).query(&forward, 0);
    assert_eq!(ans.ids(), vec![1], "mutual 1-NN pair");

    let single = Dataset::from_rows(&[vec![7.0]]).unwrap().into_shared();
    let forward = LinearScan::build(single, Euclidean);
    let ans = Rdt::new(RdtParams::new(1, 10.0)).query(&forward, 0);
    assert!(ans.result.is_empty(), "no other points exist");
}

#[test]
fn zero_variance_dimensions_are_harmless() {
    // Coordinates constant in most dimensions (common in sparse features).
    let rows: Vec<Vec<f64>> = (0..60)
        .map(|i| {
            let mut v = vec![3.0; 10];
            v[0] = i as f64;
            v
        })
        .collect();
    let ds = Dataset::from_rows(&rows).unwrap().into_shared();
    let forward = CoverTree::build(ds.clone(), Euclidean);
    let bf = BruteForce::new(ds.clone(), Euclidean);
    let mut st = SearchStats::new();
    let truth: Vec<_> = bf.rknn(30, 3, &mut st).iter().map(|n| n.id).collect();
    assert_eq!(
        Rdt::new(RdtParams::new(3, 30.0)).query(&forward, 30).ids(),
        truth
    );
    // Standardization maps the constant dims to zero without NaNs.
    let z = rknn::data::paperlike::standardize(&ds);
    assert!(z.iter().all(|(_, p)| p.iter().all(|x| x.is_finite())));
}

#[test]
fn dynamic_churn_keeps_every_index_consistent() {
    let ds = rknn::data::uniform_cube(100, 3, 502).into_shared();
    let mut cover = CoverTree::build(ds.clone(), Euclidean);
    let mut scan = LinearScan::build(ds.clone(), Euclidean);
    let mut rtree = RTree::build(ds.clone(), Euclidean);
    // Interleave inserts and removes identically.
    for i in 0..40usize {
        let p = vec![i as f64 / 10.0, 0.5, 0.5];
        let a = cover.insert(&p).unwrap();
        let b = scan.insert(&p).unwrap();
        let c = DynamicIndex::insert(&mut rtree, &p).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
        if i % 3 == 0 {
            assert!(cover.remove(i));
            assert!(scan.remove(i));
            assert!(DynamicIndex::remove(&mut rtree, i));
        }
    }
    assert_eq!(cover.num_points(), scan.num_points());
    assert_eq!(cover.num_points(), rtree.num_points());
    // Queries agree across all three after churn.
    let q = vec![0.5, 0.5, 0.5];
    let mut st = SearchStats::new();
    let a: Vec<_> = cover
        .knn(&q, 10, None, &mut st)
        .iter()
        .map(|n| n.id)
        .collect();
    let b: Vec<_> = scan
        .knn(&q, 10, None, &mut st)
        .iter()
        .map(|n| n.id)
        .collect();
    let c: Vec<_> = rtree
        .knn(&q, 10, None, &mut st)
        .iter()
        .map(|n| n.id)
        .collect();
    assert_eq!(a, b);
    assert_eq!(b, c);
}

#[test]
fn adaptive_rdt_on_degenerate_data() {
    // All-duplicates: the online Hill estimate never sees positive
    // distances; the search must fall through to exhaustion + verification
    // without panicking.
    let ds = Dataset::from_rows(&vec![vec![1.0, 1.0]; 25])
        .unwrap()
        .into_shared();
    let forward = LinearScan::build(ds, Euclidean);
    let ans = RdtAdaptive::new(3, 2.0).query(&forward, 0);
    assert_eq!(
        ans.result.len(),
        24,
        "co-located points are mutual reverse neighbors"
    );
}

#[test]
fn queries_far_outside_the_data_envelope() {
    let ds = rknn::data::uniform_cube(200, 2, 503).into_shared();
    let forward = CoverTree::build(ds.clone(), Euclidean);
    let bf = BruteForce::new(ds, Euclidean);
    let mut st = SearchStats::new();
    let q = vec![1000.0, -1000.0];
    let truth: Vec<_> = bf
        .rknn_external(&q, 5, &mut st)
        .iter()
        .map(|n| n.id)
        .collect();
    let got = Rdt::new(RdtParams::new(5, 30.0))
        .query_at(&forward, &q)
        .ids();
    assert_eq!(
        got, truth,
        "external far query must still be exact at high t"
    );
}
