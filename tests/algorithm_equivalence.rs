//! Equivalence of every method running through the unified
//! `RknnAlgorithm` abstraction, per the algorithm-refactor PR's
//! acceptance:
//!
//! 1. every **exact** method — naive, TPL, MRkNNCoP (`k ≤ k_max`),
//!    RdNN-Tree, and RDT at an exhaustive scale parameter — returns
//!    byte-identical RkNN sets (same ids, bit-identical distances) on a
//!    tie-heavy grid. RDT+ at the same exhaustive parameter keeps **full
//!    recall** with bit-identical distances on every true member, but its
//!    §4.3 candidate-set reduction can lazily accept points whose witness
//!    census was undercounted by exclusions (the repo's documented
//!    precision tradeoff), so each RDT+ extra is checked to be a genuine
//!    false positive rather than asserted absent;
//! 2. for each method, the algorithm-generic batch driver matches a
//!    sequential per-query loop over the same worker exactly: results,
//!    terminations (RDT), and deterministically merged statistics, at
//!    every worker count.
//!
//! Coordinates are drawn from a coarse half-integer grid so exact distance
//! ties (the adversarial case for strict/closed threshold tests like
//! `dist_lt`/`dist_le` and for the conservative MRkNNCoP bounds) occur
//! constantly.
//!
//! All assertions run on whatever kernel backend dispatch selects; CI
//! reruns this suite with `RKNN_KERNEL=scalar` (and `RKNN_KERNEL=avx2` on
//! capable hosts) pinned, so every method's byte-identity contract is
//! checked under every backend. A dedicated property additionally pins the
//! whole RDT engine — filter cursor, tiled witness pass, refinement — on
//! the sequential scan's SIMD tile fast path against its per-point
//! fallback.

use proptest::prelude::*;
use rknn::baselines::{MrknncopAlgorithm, NaiveRknn, RdnnAlgorithm, Sft, TplAlgorithm};
use rknn::core::{Dataset, Euclidean, Metric, Neighbor, SearchStats};
use rknn::index::{DynamicIndex, KnnIndex, LinearScan};
use rknn::rdt::algorithm::{run_algorithm_batch, AlgorithmAnswer, RdtAlgorithm, RknnAlgorithm};
use rknn::rdt::RdtParams;
use std::sync::Arc;

/// Builds a dataset on the half-integer grid `{0, 0.5, …, 4}` from raw
/// proptest levels, so duplicate points and tied distances are common.
fn grid_dataset(levels: &[u8], dim: usize) -> Arc<Dataset> {
    let n = levels.len() / dim;
    let coords: Vec<f64> = levels[..n * dim]
        .iter()
        .map(|&v| f64::from(v % 9) * 0.5)
        .collect();
    Dataset::from_flat(dim, coords)
        .expect("grid coordinates are finite")
        .into_shared()
}

/// Byte-identity of two neighbor lists: same ids in the same order with
/// bit-identical distances.
fn assert_identical(a: &[Neighbor], b: &[Neighbor], what: &str) {
    prop_assert_eq!(a.len(), b.len(), "{}: set sizes differ", what);
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(x.id, y.id, "{}: ids diverged", what);
        prop_assert_eq!(
            x.dist.to_bits(),
            y.dist.to_bits(),
            "{}: distances diverged",
            what
        );
    }
}

/// Runs one prepared algorithm over all points through (a) a sequential
/// per-query loop on a single worker and (b) the batch driver at several
/// worker counts, demanding identical answers and identical merged stats.
/// Returns the sequential reference answers.
fn assert_batch_matches_sequential<A>(
    algo: &A,
    index: &LinearScan<Euclidean>,
    label: &str,
) -> Vec<A::Answer>
where
    A: RknnAlgorithm<Euclidean, LinearScan<Euclidean>>,
{
    let queries: Vec<usize> = (0..index.num_points()).collect();
    // The reference: a plain sequential loop over one worker.
    let mut worker = algo.make_worker(index);
    let reference: Vec<A::Answer> = queries
        .iter()
        .map(|&q| algo.query(index, q, &mut worker))
        .collect();

    for threads in [1usize, 2, 5] {
        let out = run_algorithm_batch(algo, index, &queries, threads);
        prop_assert_eq!(out.answers.len(), reference.len());
        let mut members = 0usize;
        let mut work = SearchStats::new();
        for (q, (got, want)) in out.answers.iter().zip(&reference).enumerate() {
            assert_identical(
                got.neighbors(),
                want.neighbors(),
                &format!("{label} threads={threads} q={q}"),
            );
            prop_assert_eq!(
                got.work(),
                want.work(),
                "{} threads={} q={}: per-query work diverged",
                label,
                threads,
                q
            );
            members += want.neighbors().len();
            work.absorb(&want.work());
        }
        // Merged stats are summed in query order: deterministic at any
        // worker count and equal to the sequential fold.
        prop_assert_eq!(out.stats.queries, reference.len(), "{}", label);
        prop_assert_eq!(out.stats.result_members, members, "{}", label);
        prop_assert_eq!(out.stats.search, work, "{} threads={}", label, threads);
    }
    reference
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Acceptance property 1: all exact methods agree byte-identically.
    #[test]
    fn exact_methods_return_byte_identical_rknn_sets(
        levels in proptest::collection::vec(0u8..9, 24..72),
        dim in 1usize..4,
        k in 1usize..4,
    ) {
        let ds = grid_dataset(&levels, dim);
        let idx = LinearScan::build(ds.clone(), Euclidean);
        let queries: Vec<usize> = (0..ds.len()).collect();

        // The reference: naive, one verification per point.
        let naive = NaiveRknn::new(k);
        let reference = run_algorithm_batch(&naive, &idx, &queries, 2);

        // TPL.
        let mut tpl = TplAlgorithm::new(ds.clone(), Euclidean, k);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut tpl, &idx);
        let tpl_out = run_algorithm_batch(&tpl, &idx, &queries, 2);

        // MRkNNCoP with k strictly below k_max (the supported regime).
        let mut cop = MrknncopAlgorithm::new(ds.clone(), Euclidean, k, k + 2);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut cop, &idx);
        let cop_out = run_algorithm_batch(&cop, &idx, &queries, 2);

        // RdNN-Tree, welded to this k.
        let mut rdnn = RdnnAlgorithm::new(ds.clone(), Euclidean, k);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut rdnn, &idx);
        let rdnn_out = run_algorithm_batch(&rdnn, &idx, &queries, 2);

        // RDT at an exhaustive scale parameter (rank cap covers the whole
        // dataset, so Theorem 1 exactness applies: complete censuses make
        // every lazy accept/reject sound).
        let mut rdt = RdtAlgorithm::new(RdtParams::new(k, 40.0));
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut rdt, &idx);
        let rdt_out = run_algorithm_batch(&rdt, &idx, &queries, 2);
        let mut plus = RdtAlgorithm::plus(RdtParams::new(k, 40.0));
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut plus, &idx);
        let plus_out = run_algorithm_batch(&plus, &idx, &queries, 2);

        let metric = Euclidean;
        for (q, want) in reference.answers.iter().enumerate() {
            assert_identical(tpl_out.answers[q].neighbors(), want.neighbors(),
                &format!("TPL q={q}"));
            assert_identical(cop_out.answers[q].neighbors(), want.neighbors(),
                &format!("MRkNNCoP q={q}"));
            assert_identical(rdnn_out.answers[q].neighbors(), want.neighbors(),
                &format!("RdNN q={q}"));
            assert_identical(rdt_out.answers[q].neighbors(), want.neighbors(),
                &format!("RDT q={q}"));

            // RDT+: full recall with bit-identical distances on every true
            // member; extras must be genuine false positives (true witness
            // census ≥ k over the whole dataset).
            let got = plus_out.answers[q].neighbors();
            for t in want.neighbors() {
                let m = got.iter().find(|n| n.id == t.id);
                prop_assert!(m.is_some(), "RDT+ q={} missed true member {}", q, t.id);
                prop_assert_eq!(m.unwrap().dist.to_bits(), t.dist.to_bits(),
                    "RDT+ q={} distance diverged on {}", q, t.id);
            }
            for n in got {
                if want.neighbors().iter().any(|t| t.id == n.id) {
                    continue;
                }
                let census = (0..ds.len())
                    .filter(|&y| y != n.id && y != q)
                    .filter(|&y| metric.dist(ds.point(n.id), ds.point(y)) < n.dist)
                    .count();
                prop_assert!(census >= k,
                    "RDT+ q={} reported {} which is a true member (census {})",
                    q, n.id, census);
            }
        }
    }

    /// Acceptance property 2: the generic batch driver is an exact,
    /// deterministic parallelization of the sequential per-query loop for
    /// every method.
    #[test]
    fn batch_driver_matches_sequential_loop_for_every_method(
        levels in proptest::collection::vec(0u8..9, 24..60),
        dim in 1usize..4,
        k in 1usize..4,
    ) {
        let ds = grid_dataset(&levels, dim);
        let idx = LinearScan::build(ds.clone(), Euclidean);

        assert_batch_matches_sequential(&NaiveRknn::new(k), &idx, "naive");
        assert_batch_matches_sequential(&Sft::new(k, 3.0), &idx, "SFT");

        let mut tpl = TplAlgorithm::new(ds.clone(), Euclidean, k);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut tpl, &idx);
        assert_batch_matches_sequential(&tpl, &idx, "TPL");

        let mut cop = MrknncopAlgorithm::new(ds.clone(), Euclidean, k, k + 1);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut cop, &idx);
        assert_batch_matches_sequential(&cop, &idx, "MRkNNCoP");

        let mut rdnn = RdnnAlgorithm::new(ds.clone(), Euclidean, k);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut rdnn, &idx);
        assert_batch_matches_sequential(&rdnn, &idx, "RdNN");

        // RDT with the shared d_k cache disabled, so per-query work
        // counters are scheduling-independent and must match exactly; the
        // RDT-specific termination certificates must survive the driver
        // unchanged too.
        let mut rdt = RdtAlgorithm::plus(RdtParams::new(k, 4.0)).with_dk_reuse(false);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut rdt, &idx);
        let rdt_ref = assert_batch_matches_sequential(&rdt, &idx, "RDT+");
        let queries: Vec<usize> = (0..idx.num_points()).collect();
        let out = run_algorithm_batch(&rdt, &idx, &queries, 3);
        for (got, want) in out.answers.iter().zip(&rdt_ref) {
            prop_assert_eq!(got.stats, want.stats, "RDT+ full per-query stats diverged");
        }
    }

    /// The whole RDT engine on the scan's SIMD tile fast path vs the
    /// per-point fallback (forced via a tombstone in the dynamic pool):
    /// byte-identical answers and identical full per-query statistics —
    /// retrieval counts, witness pairs and distance evaluations,
    /// termination certificates — for RDT and RDT+ on every query.
    #[test]
    fn rdt_engine_is_identical_on_tile_and_fallback_scans(
        levels in proptest::collection::vec(0u8..9, 24..80),
        dim in 1usize..4,
        k in 1usize..4,
        plus_sel in 0usize..2,
    ) {
        let ds = grid_dataset(&levels, dim);
        let tile = LinearScan::build(ds.clone(), Euclidean);
        let mut fallback = LinearScan::build(ds.clone(), Euclidean);
        let tomb = fallback.insert(&vec![0.25; dim]).expect("insert");
        prop_assert!(fallback.remove(tomb));
        prop_assert!(tile.base_rows().is_some());
        prop_assert!(fallback.base_rows().is_none());

        let params = RdtParams::new(k, 4.0);
        let make = |plus: bool| {
            if plus {
                RdtAlgorithm::plus(params)
            } else {
                RdtAlgorithm::new(params)
            }
            .with_dk_reuse(false)
        };
        let mut algo = make(plus_sel == 1);
        let mut algo2 = make(plus_sel == 1);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut algo, &tile);
        RknnAlgorithm::<_, LinearScan<Euclidean>>::prepare(&mut algo2, &fallback);
        let queries: Vec<usize> = (0..ds.len()).collect();
        let a = run_algorithm_batch(&algo, &tile, &queries, 1);
        let b = run_algorithm_batch(&algo2, &fallback, &queries, 1);
        for (q, (x, y)) in a.answers.iter().zip(&b.answers).enumerate() {
            assert_identical(x.neighbors(), y.neighbors(), &format!("q={q}"));
            prop_assert_eq!(x.stats, y.stats, "per-query stats diverged at q={}", q);
        }
    }
}
