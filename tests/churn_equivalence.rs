//! Churn equivalence: interleaved inserts, deletes, compactions and
//! queries on a tie-heavy lattice, checked **byte-identical** to a
//! rebuild-from-scratch reference at every step — for every
//! [`DynamicIndex`] substrate, for both RDT variants through the unified
//! driver, and for the maintained all-points stream.
//!
//! The reference is a fresh `LinearScan` over the live points only, with
//! ids renumbered to live ranks. The remap is monotone (ascending old ids
//! ↔ ascending ranks), so `(dist, id)` tie-breaking orders candidates
//! identically on both sides and the engine's witness dynamics replay
//! exactly: answers must match in members, order, and distance *bits*.
//! Nothing here assumes exactness — RDT+ at heuristic `t` must agree with
//! its own rebuilt replay just as exact RDT does.

use proptest::prelude::*;
use rknn::core::{Dataset, Euclidean, PointId};
use rknn::index::{CoverTree, DynamicIndex, KnnIndex, LinearScan, RTree, VpTree};
use rknn::rdt::algorithm::{run_algorithm_batch, RdtAlgorithm, RknnAlgorithm};
use rknn::rdt::{MaintainedStream, RdtParams};

/// Tie-heavy half-integer lattice: many coincident distances, the
/// adversarial input for anything sensitive to `(dist, id)` ordering.
fn grid_rows(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![((i * 7) % 9) as f64 * 0.5, ((i * 3 + 1) % 9) as f64 * 0.5])
        .collect()
}

#[derive(Debug, Clone)]
enum Op {
    /// Insert a point drawn from the same lattice (keeps ties adversarial).
    Insert(f64, f64),
    /// Remove the `i % live`-th live point.
    Remove(usize),
    /// Unlink tombstones from every tree substrate's navigation structure.
    Compact,
}

fn arb_ops(steps: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..6, 0usize..64, 0usize..64), steps).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, a, b)| match kind {
                0..=2 => Op::Insert((a % 9) as f64 * 0.5, (b % 9) as f64 * 0.5),
                3..=4 => Op::Remove(a),
                _ => Op::Compact,
            })
            .collect()
    })
}

/// Answers for `queries` (old ids, ascending) from a rebuilt-from-scratch
/// `LinearScan` over the live points only, remapped back to old ids.
fn rebuilt_reference(
    algo_template: &RdtAlgorithm,
    live_sorted: &[PointId],
    coords: &[Vec<f64>],
) -> Vec<Vec<(PointId, u64)>> {
    let rows: Vec<Vec<f64>> = live_sorted.iter().map(|&id| coords[id].clone()).collect();
    let ds = Dataset::from_rows(&rows)
        .expect("live set is non-empty")
        .into_shared();
    let fresh = LinearScan::build(ds, Euclidean);
    let mut algo = algo_template.fresh();
    algo.prepare(&fresh);
    let ranks: Vec<PointId> = (0..live_sorted.len()).collect();
    run_algorithm_batch(&algo, &fresh, &ranks, 2)
        .answers
        .into_iter()
        .map(|ans| {
            ans.result
                .iter()
                .map(|n| (live_sorted[n.id], n.dist.to_bits()))
                .collect()
        })
        .collect()
}

/// Runs the same batch on a churned substrate (old ids) and asserts byte
/// identity against the rebuilt reference.
fn assert_matches_reference<I: KnnIndex<Euclidean> + Sync>(
    algo_template: &RdtAlgorithm,
    index: &I,
    live_sorted: &[PointId],
    want: &[Vec<(PointId, u64)>],
    label: &str,
) {
    let mut algo = algo_template.fresh();
    algo.prepare(index);
    let out = run_algorithm_batch(&algo, index, live_sorted, 2);
    for ((q, ans), want) in live_sorted.iter().zip(&out.answers).zip(want) {
        let got: Vec<(PointId, u64)> = ans
            .result
            .iter()
            .map(|n| (n.id, n.dist.to_bits()))
            .collect();
        assert_eq!(&got, want, "{label}: diverged from rebuild at q={q}");
    }
}

fn run_churn_scenario(n0: usize, k: usize, t_plus: f64, ops: &[Op]) {
    let rows = grid_rows(n0);
    let ds = Dataset::from_rows(&rows).unwrap().into_shared();
    let mut linear = LinearScan::build(ds.clone(), Euclidean);
    let mut cover = CoverTree::build(ds.clone(), Euclidean);
    let mut vp = VpTree::build(ds.clone(), Euclidean);
    let mut rtree = RTree::build(ds.clone(), Euclidean);
    // The maintained stream owns its own substrate copy (it must observe
    // the index on the correct side of each mutation). Exact regime: the
    // maintained-repair argument needs true RkNN answers.
    let exact = RdtAlgorithm::new(RdtParams::new(k, 50.0));
    let mut stream_tree = CoverTree::build(ds, Euclidean);
    let mut stream = MaintainedStream::new(exact.fresh(), &stream_tree, 2);

    let mut coords: Vec<Vec<f64>> = rows;
    let mut live: Vec<PointId> = (0..n0).collect();
    let plus = RdtAlgorithm::plus(RdtParams::new(k, t_plus));

    for op in ops {
        match op {
            Op::Insert(x, y) => {
                let p = vec![*x, *y];
                let id = linear.insert(&p).unwrap();
                assert_eq!(cover.insert(&p).unwrap(), id);
                assert_eq!(vp.insert(&p).unwrap(), id);
                assert_eq!(rtree.insert(&p).unwrap(), id);
                assert_eq!(stream.insert(&mut stream_tree, &p).unwrap().0, id);
                coords.push(p);
                live.push(id);
            }
            Op::Remove(i) => {
                if live.len() <= k + 2 {
                    continue;
                }
                let victim = live.remove(i % live.len());
                assert!(linear.remove(victim));
                assert!(cover.remove(victim));
                assert!(vp.remove(victim));
                assert!(rtree.remove(victim));
                assert!(stream.remove(&mut stream_tree, victim).is_some());
            }
            Op::Compact => {
                cover.compact();
                vp.compact();
                rtree.compact();
            }
        }

        let mut live_sorted = live.clone();
        live_sorted.sort_unstable();

        // Exact RDT: every substrate byte-identical to the rebuild.
        let want = rebuilt_reference(&exact, &live_sorted, &coords);
        assert_matches_reference(&exact, &linear, &live_sorted, &want, "linear/rdt");
        assert_matches_reference(&exact, &cover, &live_sorted, &want, "cover/rdt");
        assert_matches_reference(&exact, &vp, &live_sorted, &want, "vp/rdt");
        assert_matches_reference(&exact, &rtree, &live_sorted, &want, "rtree/rdt");

        // The maintained stream agrees with the rebuild at every step.
        assert_eq!(stream.live(), live_sorted.len());
        for (&q, want) in live_sorted.iter().zip(&want) {
            let got: Vec<(PointId, u64)> = stream
                .answer(q)
                .expect("live point is maintained")
                .result
                .iter()
                .map(|x| (x.id, x.dist.to_bits()))
                .collect();
            assert_eq!(&got, want, "stream: diverged from rebuild at q={q}");
        }

        // Heuristic RDT+: the churned run replays the rebuilt run exactly
        // (determinism under monotone renumbering), exact or not.
        let want_plus = rebuilt_reference(&plus, &live_sorted, &coords);
        assert_matches_reference(&plus, &linear, &live_sorted, &want_plus, "linear/rdt+");
        assert_matches_reference(&plus, &cover, &live_sorted, &want_plus, "cover/rdt+");
        assert_matches_reference(&plus, &vp, &live_sorted, &want_plus, "vp/rdt+");
        assert_matches_reference(&plus, &rtree, &live_sorted, &want_plus, "rtree/rdt+");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The full interleaved workload, byte-identical at every step.
    #[test]
    fn churned_indexes_match_rebuild_at_every_step(
        n0 in 8usize..24,
        k in 1usize..4,
        t_scaled in 20u32..80,
        ops in arb_ops(6),
    ) {
        run_churn_scenario(n0.max(k + 3), k, t_scaled as f64 / 10.0, &ops);
    }
}

/// A deterministic dense scenario covering the op mix exhaustively:
/// duplicate-coordinate inserts, deletion of base and inserted points,
/// compaction mid-stream, and deletion of a point adjacent to a tombstone.
#[test]
fn dense_scripted_churn_scenario() {
    let ops = vec![
        Op::Insert(0.5, 0.5),
        Op::Insert(0.5, 0.5),
        Op::Remove(0),
        Op::Insert(2.0, 1.5),
        Op::Remove(3),
        Op::Compact,
        Op::Remove(7),
        Op::Insert(0.0, 4.0),
        Op::Compact,
        Op::Remove(1),
    ];
    run_churn_scenario(14, 2, 4.0, &ops);
}
