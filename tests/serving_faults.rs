//! Fault tolerance: the serving engine keeps its contract — every accepted
//! ticket resolves exactly once, with an answer or a *typed* error — while
//! queries panic, workers die, deadlines expire, queues saturate, and the
//! engine shuts down underneath blocked producers.
//!
//! The invariants under test, from the failure model documented on
//! `rknn::serve::engine`:
//!
//! 1. a panic inside one query resolves *that* submitter's ticket with
//!    [`QueryError::Internal`] and nobody else's — concurrent answers stay
//!    byte-identical to the sequential driver;
//! 2. an input that repeatedly kills workers is quarantined (the poison-pill
//!    log names it), so one bad query cannot grind the engine down forever;
//! 3. a worker death (panic outside the protected region) resolves the
//!    in-flight ticket via the drop guard and the supervisor respawns the
//!    thread — the engine serves again without intervention;
//! 4. deadlines resolve tickets as [`QueryError::DeadlineExceeded`] whether
//!    they expire in queue or in flight;
//! 5. `close()` wakes producers spinning on a saturated queue with
//!    [`QueryError::Closed`] and every queued ticket still resolves;
//! 6. a failed snapshot advance leaves the published epoch serving;
//! 7. [`RetryPolicy`] retries only saturation, bounded, and treats `Closed`
//!    as terminal.

use proptest::prelude::*;
use rknn::core::{Dataset, Euclidean, Neighbor, PointId};
use rknn::index::{KnnIndex, LinearScan};
use rknn::rdt::algorithm::{AlgorithmAnswer, RdtAlgorithm, RknnAlgorithm};
use rknn::rdt::RdtParams;
use rknn::serve::{
    advance_snapshot, ChurnOp, Engine, EngineConfig, FaultPlan, PoisonKey, QueryError,
    QueryRequest, RetryPolicy, Snapshot,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Injected panics are expected here; keep them off the test's stderr so
/// real failures stay visible. Installed once, filters only the payloads
/// this suite (and the fault plan) deliberately raises.
fn silence_expected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if message.contains("injected fault") || message.contains("victim query") {
                return;
            }
            default(info);
        }));
    });
}

/// Tie-heavy half-integer lattice rows (the adversarial case for
/// `(dist, id)` ordering, as in the serving equivalence suite).
fn grid_dataset(n: usize) -> Arc<Dataset> {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| vec![((i * 7) % 9) as f64 * 0.5, ((i * 3 + 1) % 9) as f64 * 0.5])
        .collect();
    Dataset::from_rows(&rows)
        .expect("grid coordinates are finite")
        .into_shared()
}

type Digest = Vec<(PointId, u64)>;

fn digest(neighbors: &[Neighbor]) -> Digest {
    neighbors.iter().map(|n| (n.id, n.dist.to_bits())).collect()
}

/// Sequential per-query reference: the byte-identity baseline.
fn sequential_reference(k: usize, index: &LinearScan<Euclidean>) -> Vec<Digest> {
    let mut algo = RdtAlgorithm::new(RdtParams::new(k, 50.0));
    algo.prepare(index);
    let mut worker = algo.make_worker(index);
    (0..index.num_points())
        .map(|q| digest(algo.query(index, q, &mut worker).neighbors()))
        .collect()
}

/// RDT with a poisoned input: the query at `victim` panics every time it
/// executes, everywhere else it delegates unchanged. Exercises the
/// engine's `catch_unwind` isolation with a deterministic offender.
struct PanickyAlgorithm {
    inner: RdtAlgorithm,
    victim: PointId,
}

impl PanickyAlgorithm {
    fn new(k: usize, victim: PointId) -> Self {
        PanickyAlgorithm {
            inner: RdtAlgorithm::new(RdtParams::new(k, 50.0)),
            victim,
        }
    }
}

type Inner = RdtAlgorithm;
type InnerWorker = <Inner as RknnAlgorithm<Euclidean, LinearScan<Euclidean>>>::Worker;
type InnerAnswer = <Inner as RknnAlgorithm<Euclidean, LinearScan<Euclidean>>>::Answer;

impl RknnAlgorithm<Euclidean, LinearScan<Euclidean>> for PanickyAlgorithm {
    type Worker = InnerWorker;
    type Answer = InnerAnswer;

    fn name(&self) -> String {
        format!(
            "panicky({})",
            RknnAlgorithm::<Euclidean, LinearScan<Euclidean>>::name(&self.inner)
        )
    }

    fn prepare(&mut self, index: &LinearScan<Euclidean>) {
        self.inner.prepare(index);
    }

    fn make_worker(&self, index: &LinearScan<Euclidean>) -> Self::Worker {
        self.inner.make_worker(index)
    }

    fn query(
        &self,
        index: &LinearScan<Euclidean>,
        q: PointId,
        worker: &mut Self::Worker,
    ) -> Self::Answer {
        assert!(q != self.victim, "victim query {q} panics by design");
        self.inner.query(index, q, worker)
    }
}

fn panicky_engine(
    n: usize,
    k: usize,
    victim: PointId,
    config: EngineConfig,
) -> Engine<Euclidean, LinearScan<Euclidean>, PanickyAlgorithm> {
    let ds = grid_dataset(n);
    Engine::new(
        Snapshot::prepare(
            0,
            LinearScan::build(ds, Euclidean),
            PanickyAlgorithm::new(k, victim),
        ),
        config,
    )
}

fn rdt_engine(
    n: usize,
    k: usize,
    config: EngineConfig,
) -> Engine<Euclidean, LinearScan<Euclidean>, RdtAlgorithm> {
    let ds = grid_dataset(n);
    Engine::new(
        Snapshot::prepare(
            0,
            LinearScan::build(ds, Euclidean),
            RdtAlgorithm::new(RdtParams::new(k, 50.0)),
        ),
        config,
    )
}

const WATCHDOG: Duration = Duration::from_secs(20);

/// A ticket under a fault schedule must still resolve; the watchdog turns
/// a lost ticket into a test failure instead of a hang.
fn resolve(ticket: &rknn::serve::Ticket) -> Result<rknn::serve::QueryResponse, QueryError> {
    ticket
        .wait_timeout(WATCHDOG)
        .expect("ticket resolved within the watchdog (none may ever be lost)")
}

#[test]
fn a_panicking_query_fails_alone_and_neighbors_stay_byte_identical() {
    silence_expected_panics();
    let (n, k, victim) = (40, 2, 7usize);
    let reference = sequential_reference(k, &LinearScan::build(grid_dataset(n), Euclidean));
    let engine = panicky_engine(
        n,
        k,
        victim,
        EngineConfig {
            workers: 3,
            queue_capacity: 16,
            ..EngineConfig::default()
        },
    );
    let tickets: Vec<_> = (0..n)
        .map(|q| {
            let mut t = engine.submit(q);
            while let Err(QueryError::Saturated { .. }) = t {
                std::thread::yield_now();
                t = engine.submit(q);
            }
            t.expect("non-saturation submit errors are bugs here")
        })
        .collect();
    for (q, ticket) in tickets.iter().enumerate() {
        match resolve(ticket) {
            Ok(r) => {
                assert_ne!(q, victim, "the victim must not answer");
                assert_eq!(
                    digest(&r.neighbors),
                    reference[q],
                    "q={q}: a neighbor's panic must not perturb this answer"
                );
            }
            Err(QueryError::Internal { reason, .. }) => {
                assert_eq!(q, victim, "only the victim may fail: {reason}");
                assert!(
                    reason.contains("query panicked"),
                    "typed internal error names the panic: {reason}"
                );
            }
            Err(other) => panic!("q={q}: unexpected outcome {other}"),
        }
    }
    let stats = engine.shutdown();
    assert!(stats.panics >= 1, "the panic was observed");
    assert!(stats.internal_errors >= 1);
    assert_eq!(
        stats.submitted,
        stats.completed + stats.failed,
        "every accepted submission resolved exactly once"
    );
}

#[test]
fn repeat_offender_inputs_are_quarantined_and_named_in_the_poison_log() {
    silence_expected_panics();
    let (n, k, victim) = (30, 2, 11usize);
    let engine = panicky_engine(
        n,
        k,
        victim,
        EngineConfig {
            workers: 1,
            queue_capacity: 8,
            poison_threshold: 2,
            // Keep the consecutive-failure breaker out of the way so the
            // per-input threshold is what trips.
            breaker_threshold: 100,
            ..EngineConfig::default()
        },
    );
    // Two executions cross the per-input threshold...
    for _ in 0..2 {
        match resolve(&engine.submit(victim).expect("admitted")) {
            Err(QueryError::Internal { reason, .. }) => {
                assert!(reason.contains("query panicked"), "{reason}")
            }
            other => panic!("victim must fail with Internal, got {other:?}"),
        }
    }
    // ...after which the input is refused *before* it reaches the
    // algorithm: the typed error says quarantined, not panicked.
    match resolve(&engine.submit(victim).expect("admitted")) {
        Err(QueryError::Internal { reason, .. }) => {
            assert!(reason.contains("quarantined"), "{reason}")
        }
        other => panic!("quarantined input must fail typed, got {other:?}"),
    }
    // Healthy traffic still answers on the same worker.
    let r = resolve(&engine.submit(3usize).expect("admitted")).expect("healthy query answers");
    assert_eq!(r.point_id(), Some(3));
    let pills = engine.poison_log();
    let pill = pills
        .iter()
        .find(|p| p.key == PoisonKey::Point(victim))
        .expect("the victim appears in the poison log");
    assert!(pill.quarantined, "the log marks it quarantined");
    assert!(pill.failures >= 2);
    assert!(
        pill.last_reason.contains("victim query"),
        "{}",
        pill.last_reason
    );
    let stats = engine.shutdown();
    assert!(stats.quarantined >= 1);
    assert_eq!(stats.submitted, stats.completed + stats.failed);
}

#[test]
fn the_supervisor_respawns_a_dead_worker_and_service_resumes() {
    silence_expected_panics();
    let engine = rdt_engine(
        30,
        2,
        EngineConfig {
            workers: 1,
            queue_capacity: 8,
            faults: Some(Arc::new(FaultPlan::new().death_at(0))),
            ..EngineConfig::default()
        },
    );
    // Execution slot 0 kills the only worker mid-query: the drop guard
    // still resolves the ticket, typed.
    match resolve(&engine.submit(0usize).expect("admitted")) {
        Err(QueryError::Internal { reason, .. }) => {
            assert!(reason.contains("died"), "{reason}")
        }
        other => panic!("the in-flight ticket resolves Internal, got {other:?}"),
    }
    // The supervisor respawns the thread; subsequent queries answer.
    for q in 1..6usize {
        let r = resolve(&engine.submit(q).expect("admitted")).expect("post-respawn queries answer");
        assert_eq!(r.point_id(), Some(q));
    }
    let stats = engine.shutdown();
    assert!(stats.respawns >= 1, "the supervisor acted");
    assert!(stats.panics >= 1);
    assert_eq!(stats.submitted, stats.completed + stats.failed);
}

#[test]
fn in_flight_deadlines_resolve_as_deadline_exceeded() {
    silence_expected_panics();
    // The first execution slot sleeps 80ms; a 10ms ticket budget expires
    // while the query is wedged in flight, and the cooperative token turns
    // it into a typed deadline error (never a stuck or lost ticket).
    let engine = rdt_engine(
        30,
        2,
        EngineConfig {
            workers: 1,
            queue_capacity: 8,
            faults: Some(Arc::new(
                FaultPlan::new().delay_at(0, Duration::from_millis(80)),
            )),
            ..EngineConfig::default()
        },
    );
    let ticket = engine
        .submit(QueryRequest::point(0).with_timeout(Duration::from_millis(10)))
        .expect("admitted");
    match resolve(&ticket) {
        Err(QueryError::DeadlineExceeded { .. }) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let stats = engine.shutdown();
    assert!(stats.deadline_exceeded >= 1);
    assert_eq!(stats.submitted, stats.completed + stats.failed);
}

#[test]
fn close_wakes_blocked_producers_and_every_queued_ticket_resolves() {
    silence_expected_panics();
    // Capacity 1, one worker wedged 300ms by an injected delay: the queue
    // is full, a producer spins on Saturated, and close() must hand it a
    // typed Closed instead of leaving it spinning forever.
    let engine = rdt_engine(
        30,
        2,
        EngineConfig {
            workers: 1,
            queue_capacity: 1,
            faults: Some(Arc::new(
                FaultPlan::new().delay_at(0, Duration::from_millis(300)),
            )),
            ..EngineConfig::default()
        },
    );
    let mut tickets = vec![engine.submit(0usize).expect("first query admitted")];
    // Fill the (single-slot) queue behind the wedged worker.
    let second = loop {
        match engine.submit(1usize) {
            Ok(t) => break t,
            Err(QueryError::Saturated { .. }) => std::thread::yield_now(),
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    };
    tickets.push(second);
    let saw_closed = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| loop {
            match engine.submit(2usize) {
                // Should the queue free up first, the admitted ticket must
                // itself resolve; keep pressing until Closed arrives.
                Ok(t) => {
                    let _ = t.wait_timeout(WATCHDOG).expect("admitted ticket resolves");
                }
                Err(QueryError::Saturated { .. }) => std::thread::yield_now(),
                Err(QueryError::Closed) => {
                    saw_closed.store(true, Ordering::SeqCst);
                    break;
                }
                Err(other) => panic!("unexpected submit error: {other}"),
            }
        });
        std::thread::sleep(Duration::from_millis(30));
        engine.close();
    });
    assert!(
        saw_closed.load(Ordering::SeqCst),
        "the blocked producer observed Closed"
    );
    let stats = engine.shutdown();
    for ticket in &tickets {
        match resolve(ticket) {
            Ok(_) | Err(QueryError::Closed) => {}
            other => panic!("queued ticket must answer or close, got {other:?}"),
        }
    }
    assert_eq!(
        stats.submitted,
        stats.completed + stats.failed,
        "drain accounts for every accepted ticket"
    );
}

#[test]
fn a_failed_advance_leaves_the_published_snapshot_serving() {
    let (n, k) = (30, 2);
    let reference = sequential_reference(k, &LinearScan::build(grid_dataset(n), Euclidean));
    let engine = rdt_engine(
        n,
        k,
        EngineConfig {
            workers: 2,
            queue_capacity: 8,
            ..EngineConfig::default()
        },
    );
    let pinned = engine.snapshot();
    let err = advance_snapshot(&pinned, &[ChurnOp::Remove(n + 100)])
        .expect_err("removing an unknown id is a typed error");
    assert!(err.to_string().contains("not live"), "{err}");
    // Nothing was published: the engine still serves epoch 0, bit-exact.
    assert_eq!(engine.snapshot().epoch(), 0);
    let r = resolve(&engine.submit(5usize).expect("admitted")).expect("still serving");
    assert_eq!(r.epoch, 0);
    assert_eq!(digest(&r.neighbors), reference[5]);
    engine.shutdown();
}

#[test]
fn retry_policy_is_bounded_under_saturation_and_terminal_on_closed() {
    silence_expected_panics();
    let engine = rdt_engine(
        30,
        2,
        EngineConfig {
            workers: 1,
            queue_capacity: 1,
            faults: Some(Arc::new(
                FaultPlan::new().delay_at(0, Duration::from_millis(800)),
            )),
            ..EngineConfig::default()
        },
    );
    // Wedge the worker, fill the queue.
    let first = engine.submit(0usize).expect("admitted");
    let second = loop {
        match engine.submit(1usize) {
            Ok(t) => break t,
            Err(QueryError::Saturated { .. }) => std::thread::yield_now(),
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    };
    // Three bounded attempts, all saturated: two backoff sleeps, then the
    // last Saturated comes back instead of spinning.
    let policy =
        RetryPolicy::new(3).with_backoff(Duration::from_micros(100), Duration::from_millis(1));
    let (outcome, retries) = policy.submit(&engine, QueryRequest::point(2));
    assert!(
        matches!(outcome, Err(QueryError::Saturated { .. })),
        "queue stays full for the whole retry window"
    );
    assert_eq!(retries, 2, "attempts are bounded by the policy");
    // Closed is terminal: no retries are spent on an engine that will
    // never accept again.
    engine.close();
    let (outcome, retries) = policy.submit(&engine, QueryRequest::point(2));
    assert!(matches!(outcome, Err(QueryError::Closed)));
    assert_eq!(retries, 0);
    let stats = engine.shutdown();
    for ticket in [first, second] {
        match ticket.wait_timeout(WATCHDOG).expect("resolved") {
            Ok(_) | Err(QueryError::Closed) => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert_eq!(stats.submitted, stats.completed + stats.failed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The deadline contract, property-driven: under arbitrary worker
    /// counts, tight queues, and a mix of generous/impossible deadlines,
    /// every accepted ticket resolves **exactly one** of answer /
    /// `DeadlineExceeded` / `Closed` — and every answer is byte-identical
    /// to the sequential driver.
    #[test]
    fn every_deadline_ticket_resolves_exactly_one_typed_outcome(
        n in 24usize..40,
        k in 1usize..4,
        workers in prop_oneof![Just(1usize), Just(2), Just(4)],
        queue_cap in prop_oneof![Just(1usize), Just(2), Just(8)],
        raw_order in proptest::collection::vec((any::<u16>(), 0u8..3), 20..48),
    ) {
        silence_expected_panics();
        let ds = grid_dataset(n);
        let reference = sequential_reference(k, &LinearScan::build(ds.clone(), Euclidean));
        let engine = Engine::new(
            Snapshot::prepare(
                0,
                LinearScan::build(ds, Euclidean),
                RdtAlgorithm::new(RdtParams::new(k, 50.0)),
            ),
            EngineConfig { workers, queue_capacity: queue_cap, ..EngineConfig::default() },
        );
        let mut tickets = Vec::new();
        for &(raw, kind) in &raw_order {
            let q = raw as usize % n;
            let request = match kind {
                // Already expired at submission: must shed in queue.
                0 => QueryRequest::point(q).with_timeout(Duration::ZERO),
                // Tight but possible.
                1 => QueryRequest::point(q).with_timeout(Duration::from_micros(500)),
                // Generous: effectively no deadline pressure.
                _ => QueryRequest::point(q).with_timeout(Duration::from_secs(30)),
            };
            loop {
                match engine.submit(request.clone()) {
                    Ok(t) => { tickets.push((q, t)); break; }
                    Err(QueryError::Saturated { .. }) => std::thread::yield_now(),
                    Err(other) => panic!("unexpected submit error: {other}"),
                }
            }
        }
        // Close with work possibly still queued, so `Closed` outcomes are
        // reachable alongside answers and deadline errors.
        engine.close();
        let mut outcomes = (0usize, 0usize, 0usize);
        for (q, ticket) in &tickets {
            match ticket.wait_timeout(WATCHDOG).expect("no ticket is ever lost") {
                Ok(r) => {
                    outcomes.0 += 1;
                    prop_assert_eq!(r.point_id(), Some(*q));
                    prop_assert_eq!(
                        &digest(&r.neighbors), &reference[*q],
                        "q={} answered under deadline pressure must stay byte-identical", q
                    );
                }
                Err(QueryError::DeadlineExceeded { .. }) => outcomes.1 += 1,
                Err(QueryError::Closed) => outcomes.2 += 1,
                Err(other) => panic!("q={q}: outcome outside the typed set: {other}"),
            }
        }
        let stats = engine.shutdown();
        prop_assert_eq!(
            outcomes.0 + outcomes.1 + outcomes.2,
            tickets.len(),
            "exactly one outcome per accepted ticket"
        );
        prop_assert_eq!(stats.submitted, stats.completed + stats.failed);
    }
}
