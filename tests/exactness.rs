//! Cross-crate exactness tests: every exact method agrees with brute force
//! and with each other, and RDT becomes exact above the Theorem 1
//! threshold.

use rknn::baselines::{MRkNNCoP, NaiveRknn, RdnnTree, Sft, Tpl};
use rknn::prelude::*;
use rknn::rdt::{theory, Rdt, RdtParams};
use std::collections::HashSet;
use std::sync::Arc;

fn dataset(n: usize, seed: u64) -> Arc<rknn::core::Dataset> {
    rknn::data::gaussian_blobs(n, 3, 5, 0.6, seed).into_shared()
}

fn truth_sets(bf: &BruteForce<Euclidean>, queries: &[PointId], k: usize) -> Vec<HashSet<PointId>> {
    let mut st = SearchStats::new();
    queries
        .iter()
        .map(|&q| bf.rknn(q, k, &mut st).iter().map(|n| n.id).collect())
        .collect()
}

#[test]
fn all_exact_methods_agree_with_brute_force() {
    let ds = dataset(400, 201);
    let forward = CoverTree::build(ds.clone(), Euclidean);
    let bf = BruteForce::new(ds.clone(), Euclidean);
    let queries = rknn::data::sample_queries(ds.len(), 12, 7);
    for k in [1usize, 5, 15] {
        let truths = truth_sets(&bf, &queries, k);
        let naive = NaiveRknn::new(k);
        let mrk = MRkNNCoP::build(ds.clone(), Euclidean, 20, &forward);
        let rdnn = RdnnTree::build(ds.clone(), Euclidean, k, &forward);
        let tpl = Tpl::build(ds.clone(), Euclidean);
        for (i, &q) in queries.iter().enumerate() {
            let mut st = SearchStats::new();
            let truth = &truths[i];
            let a: HashSet<_> = naive
                .query(&forward, q, &mut st)
                .iter()
                .map(|n| n.id)
                .collect();
            let b: HashSet<_> = mrk
                .query(q, k, &forward, &mut st)
                .iter()
                .map(|n| n.id)
                .collect();
            let c: HashSet<_> = rdnn.query(q, &mut st).iter().map(|n| n.id).collect();
            let d: HashSet<_> = tpl.query(q, k, &mut st).iter().map(|n| n.id).collect();
            assert_eq!(&a, truth, "naive k={k} q={q}");
            assert_eq!(&b, truth, "mrknncop k={k} q={q}");
            assert_eq!(&c, truth, "rdnn k={k} q={q}");
            assert_eq!(&d, truth, "tpl k={k} q={q}");
        }
    }
}

#[test]
fn theorem1_exactness_above_maxged() {
    // With t above MaxGED(S, k) (+0.5 safety margin for the rank-convention
    // offset documented in DESIGN.md §2), RDT returns exact answers.
    let ds = dataset(250, 202);
    let forward = CoverTree::build(ds.clone(), Euclidean);
    let bf = BruteForce::new(ds.clone(), Euclidean);
    let k = 4;
    let t = theory::exactness_threshold(&ds, &Euclidean, k) + 0.5;
    let rdt = Rdt::new(RdtParams::new(k, t));
    let queries = rknn::data::sample_queries(ds.len(), 20, 8);
    let truths = truth_sets(&bf, &queries, k);
    for (i, &q) in queries.iter().enumerate() {
        let got: HashSet<_> = rdt.query(&forward, q).ids().into_iter().collect();
        assert_eq!(&got, &truths[i], "q={q}, t={t}");
    }
}

#[test]
fn sft_exact_when_candidate_budget_covers_dataset() {
    let ds = dataset(300, 203);
    let forward = CoverTree::build(ds.clone(), Euclidean);
    let bf = BruteForce::new(ds.clone(), Euclidean);
    let k = 6;
    let alpha = ds.len() as f64 / k as f64; // alpha·k ≥ n.
    let sft = Sft::new(k, alpha);
    let queries = rknn::data::sample_queries(ds.len(), 10, 9);
    let truths = truth_sets(&bf, &queries, k);
    let mut st = SearchStats::new();
    for (i, &q) in queries.iter().enumerate() {
        let got: HashSet<_> = sft
            .query(&forward, q, &mut st)
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(&got, &truths[i], "q={q}");
    }
}

#[test]
fn exactness_holds_across_metrics() {
    // The analysis holds for any metric; check naive/RDT agreement in L1.
    let ds = dataset(250, 204);
    let forward = CoverTree::build(ds.clone(), rknn::core::Manhattan);
    let rdt = Rdt::new(RdtParams::new(5, 40.0));
    let naive = NaiveRknn::new(5);
    let mut st = SearchStats::new();
    for q in [0usize, 100, 249] {
        let a: Vec<_> = rdt.query(&forward, q).ids();
        let b: Vec<_> = naive
            .query(&forward, q, &mut st)
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(a, b, "q={q}");
    }
}
