//! Workspace wiring smoke test.
//!
//! Asserts that every facade re-export (`rknn::prelude`, `rknn::core`,
//! `rknn::index`, `rknn::lid`, `rknn::rdt`, `rknn::baselines`,
//! `rknn::data`, `rknn::eval`) stays reachable, so a future manifest edit
//! cannot silently drop a crate from the facade: if any edge breaks, this
//! file stops compiling.

use rknn::prelude::*;

/// Touch one item from every re-exported crate module, through the
/// `rknn::<module>` paths (not the underlying `rknn_*` crate names).
#[test]
fn every_facade_module_is_wired() {
    // rknn::core
    let ds: rknn::core::Dataset =
        rknn::core::Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]])
            .expect("valid rows");
    let ds = ds.into_shared();
    let _: &dyn rknn::core::Metric = &rknn::core::Euclidean;

    // rknn::index
    let scan = rknn::index::LinearScan::build(ds.clone(), Euclidean);
    let cover = rknn::index::CoverTree::build(ds.clone(), Euclidean);

    // rknn::lid
    let _: rknn::lid::HillEstimator = rknn::lid::HillEstimator::default();

    // rknn::rdt
    let rdt = rknn::rdt::Rdt::new(rknn::rdt::RdtParams::new(2, 4.0));
    let a = rdt.query(&scan, 0);
    let b = rdt.query(&cover, 0);
    assert_eq!(a.ids(), b.ids(), "substrates agree through the facade");

    // rknn::baselines
    let mut st = SearchStats::new();
    let naive = rknn::baselines::NaiveRknn::new(2);
    let _ = naive.query(&scan, 0, &mut st);

    // rknn::data
    let blobs = rknn::data::gaussian_blobs(64, 2, 3, 0.1, 7);
    assert_eq!(blobs.len(), 64);

    // rknn::eval
    let table = rknn::eval::DkTable::compute(&scan, &[1, 2], 2);
    assert!(table.dk_of(0, 1).is_finite());
}

/// The prelude itself: every name it promises resolves and is usable
/// without naming the member crates.
#[test]
fn prelude_names_resolve() {
    let ds = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![3.0]])
        .expect("valid rows")
        .into_shared();
    let bf = BruteForce::new(ds.clone(), Euclidean);
    let mut st = SearchStats::new();
    let rnn = bf.rknn(0, 1, &mut st);
    assert!(rnn.iter().all(|n: &Neighbor| n.id < ds.len()));

    // One name per prelude line, proving the use-glob carries them.
    let _ = (Manhattan.dist(&[0.0], &[2.0]), PointId::default());
    let _ = NaiveRknn::new(1);
    let _ = Rdt::new(RdtParams::new(1, 2.0));
    let _ = RdtPlus::new(RdtParams::new(1, 2.0));
    let _: VpTree<Euclidean> = VpTree::build(ds.clone(), Euclidean);
    let _: BallTree<Euclidean> = BallTree::build(ds.clone(), Euclidean);
    let _: MTree<Euclidean> = MTree::build(ds.clone(), Euclidean);
    let _: RTree<Euclidean> = RTree::build(ds.clone(), Euclidean);
    let _ = GedEstimator::new(2);
}
