//! Vendored offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this implements the
//! subset of proptest the workspace's property tests use:
//!
//! * [`strategy::Strategy`] — value generators; numeric `Range`s are
//!   strategies, tuples of strategies are strategies,
//!   [`strategy::Strategy::prop_map`] transforms outputs,
//!   [`strategy::Strategy::prop_flat_map`] derives dependent strategies
//!   (draw a dimension, then rows of that dimension),
//!   [`strategy::any`] draws unconstrained primitives, and
//!   [`collection::vec`] composes them into vectors (with either an exact
//!   `usize` length or a `Range<usize>`);
//! * [`proptest!`] — the test-harness macro, including the optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`prop_assert!`] / [`prop_assert_eq!`] — assertion forms;
//! * [`prop_oneof!`] / [`strategy::Union`] /
//!   [`strategy::BoxedStrategy`] — unweighted unions of type-erased
//!   strategies, for mixing value classes (e.g. normal / subnormal /
//!   huge floats) in one generator.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its seed and case index
//!   (printed in the panic message via an augmented assert) instead of a
//!   minimized input. Inputs here are small enough to eyeball.
//! * **Deterministic seeding.** Case `i` of every test draws from
//!   `SmallRng::seed_from_u64(SEED_BASE + i)`, so failures always
//!   reproduce; there is no environment-variable seed override.

use rand::rngs::SmallRng;

/// Base seed for case generation; case `i` uses `SEED_BASE + i`.
pub const SEED_BASE: u64 = 0x9_e377;

/// Core generation abstraction.
pub mod strategy {
    use super::SmallRng;
    use rand::Rng;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f` (real proptest's `prop_map`,
        /// minus shrinking).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each generated value and samples
        /// it (real proptest's `prop_flat_map`, minus shrinking) — the
        /// dependent-generation combinator, e.g. "draw a dimension, then
        /// rows of exactly that dimension".
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases this strategy (real proptest's `boxed`), so
        /// differently-typed strategies with one value type can share a
        /// [`Union`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy; produced by [`Strategy::boxed`], consumed
    /// by [`Union`] / [`crate::prop_oneof!`].
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            (**self).sample(rng)
        }
    }

    /// An unweighted union of strategies: each sample picks one arm
    /// uniformly and draws from it (real proptest's `Union`, minus
    /// weights and shrinking). Built by [`crate::prop_oneof!`].
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms`; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            let arm = rng.random_range(0..self.arms.len());
            self.arms[arm].sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut SmallRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A strategy drawing any value of a primitive type uniformly (real
    /// proptest's `any::<T>()`, for the types the workspace tests use).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    /// See [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Types [`any`] can draw.
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(usize, u64, u32, u16, u8, f64, f32);

    /// A strategy producing one fixed value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }
}

/// Strategies for collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::SmallRng;
    use rand::Rng;

    /// Length specification for [`vec()`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// A strategy generating `Vec`s of `element` with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// An unweighted union of strategies with one value type: each sample
/// picks an arm uniformly. Real proptest's weighted `w => strat` arm form
/// is not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat),)+
        ])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    (
        $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases as u64 {
                let mut __rng = <$crate::__rng::SmallRng as $crate::__rng::SeedableRng>::
                    seed_from_u64($crate::SEED_BASE + __case);
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::sample(&($strat), &mut __rng),)+
                );
                $body
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { .. }`
/// item becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
pub mod __rng {
    pub use rand::rngs::SmallRng;
    pub use rand::SeedableRng;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_respects_exact_and_ranged_sizes() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let exact = collection::vec(0.0f64..1.0, 7usize);
        let ranged = collection::vec(0usize..5, 2..9);
        for _ in 0..100 {
            assert_eq!(exact.sample(&mut rng).len(), 7);
            let v = ranged.sample(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn tuples_and_prop_map_compose() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let ops = collection::vec((0u8..3, 0usize..10), 4..9).prop_map(|raw| {
            raw.into_iter()
                .map(|(k, a)| k as usize + a)
                .collect::<Vec<_>>()
        });
        for _ in 0..50 {
            let v = ops.sample(&mut rng);
            assert!((4..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 12));
        }
    }

    #[test]
    fn nested_vec_matches_workspace_usage() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let pts = collection::vec(collection::vec(-100.0f64..100.0, 3usize), 5..120);
        let v = pts.sample(&mut rng);
        assert!((5..120).contains(&v.len()));
        assert!(v.iter().all(|row| row.len() == 3));
        assert!(v.iter().flatten().all(|x| (-100.0..100.0).contains(x)));
    }

    #[test]
    fn flat_map_derives_dependent_strategies() {
        use crate::strategy::{any, Strategy};
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        // The loader-test shape: draw a dimension, then rows of exactly
        // that dimension.
        let rows = (1usize..5)
            .prop_flat_map(|dim| collection::vec(collection::vec(0.0f64..1.0, dim), 1..10));
        for _ in 0..100 {
            let v = rows.sample(&mut rng);
            let dim = v[0].len();
            assert!((1..5).contains(&dim));
            assert!(v.iter().all(|row| row.len() == dim));
        }
        let mut seen = std::collections::HashSet::new();
        let bytes = any::<u8>();
        for _ in 0..2000 {
            seen.insert(bytes.sample(&mut rng));
        }
        assert!(seen.len() > 200, "any::<u8> covered only {}", seen.len());
    }

    #[test]
    fn oneof_samples_every_arm_and_composes_with_vec() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        // Three disjoint value classes, one erased to a prop_map'd arm —
        // the exact shape the float-class generators in the kernel suite
        // use.
        let classes = prop_oneof![
            0.0f64..1.0,
            (1000.0f64..2000.0).prop_map(|x| -x),
            Just(f64::MIN_POSITIVE),
        ];
        let (mut small, mut neg, mut sub) = (0usize, 0usize, 0usize);
        for _ in 0..300 {
            let x = classes.sample(&mut rng);
            if x == f64::MIN_POSITIVE {
                sub += 1;
            } else if x < 0.0 {
                assert!((-2000.0..=-1000.0).contains(&x));
                neg += 1;
            } else {
                assert!((0.0..1.0).contains(&x));
                small += 1;
            }
        }
        assert!(small > 0 && neg > 0 && sub > 0, "{small}/{neg}/{sub}");
        let rows = collection::vec(prop_oneof![0.0f64..1.0, Just(2.0)], 4usize);
        assert_eq!(rows.sample(&mut rng).len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: patterns bind, config caps cases, asserts work.
        #[test]
        fn macro_binds_and_runs(
            xs in collection::vec(0.0f64..10.0, 1..20),
            k in 1usize..4,
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!((1..4).contains(&k));
            prop_assert_eq!(xs.len(), xs.iter().filter(|x| x.is_finite()).count());
        }

        /// `prop_oneof!` inside the macro form: mixed float classes flow
        /// through pattern binding.
        #[test]
        fn macro_accepts_oneof_strategies(
            x in prop_oneof![0.0f64..1.0, (0.5f64..2.0).prop_map(|v| v * 1e300)],
        ) {
            prop_assert!(x.is_finite());
            prop_assert!((0.0..1.0).contains(&x) || x >= 0.5e300);
        }
    }
}
