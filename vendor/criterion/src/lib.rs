//! Vendored offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's five benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`measurement_time`/`finish`, [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with honest but
//! unsophisticated measurement: median + min/max of per-sample means over
//! a warmed-up timing loop, printed to stdout.
//!
//! Under `cargo test` (cargo passes `--test` to `harness = false` bench
//! executables) every benchmark body runs **once** as a smoke test, so the
//! test suite stays fast while still compiling and exercising bench code.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How a bench executable was invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo bench` — run timing loops.
    Bench,
    /// `cargo test` — run every body once, no timing.
    Test,
    /// `--list` — print benchmark names only.
    List,
}

fn mode_from_args() -> Mode {
    let mut mode = Mode::Bench;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--test" => mode = Mode::Test,
            "--list" => mode = Mode::List,
            _ => {}
        }
    }
    mode
}

/// The benchmark manager handed to every `criterion_group!` target.
pub struct Criterion {
    mode: Mode,
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: mode_from_args(),
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the default time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        run_one(
            self.mode,
            &id.to_string(),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: std::fmt::Display>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            mode: self.mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    mode: Mode,
    sample_size: usize,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'c mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the time budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.mode, &full, self.sample_size, self.measurement_time, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    mode: Mode,
    samples: usize,
    budget: Duration,
    /// Mean per-iteration times, one entry per sample.
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, adaptively choosing iterations per sample so the
    /// whole measurement fits the group's time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode != Mode::Bench {
            black_box(routine());
            return;
        }
        // Calibrate: how long does one iteration take?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.budget.as_nanos() / self.samples.max(1) as u128;
        let iters = (per_sample / once.as_nanos().max(1)).clamp(1, 1_000_000) as u32;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.results.push(start.elapsed() / iters);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    mode: Mode,
    id: &str,
    samples: usize,
    budget: Duration,
    mut f: F,
) {
    match mode {
        Mode::List => {
            // Mirror libtest's `--list` line shape so tooling can parse it.
            println!("{id}: benchmark");
        }
        Mode::Test => {
            let mut b = Bencher {
                mode,
                samples,
                budget,
                results: Vec::new(),
            };
            f(&mut b);
            println!("test {id} ... ok");
        }
        Mode::Bench => {
            let mut b = Bencher {
                mode,
                samples,
                budget,
                results: Vec::new(),
            };
            f(&mut b);
            if b.results.is_empty() {
                println!("{id:<50} (no measurement: bencher never called iter)");
                return;
            }
            b.results.sort_unstable();
            let median = b.results[b.results.len() / 2];
            let lo = b.results[0];
            let hi = *b.results.last().expect("non-empty");
            println!(
                "{id:<50} time: [{} {} {}]",
                fmt_duration(lo),
                fmt_duration(median),
                fmt_duration(hi)
            );
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench executable's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_samples() {
        let mut c = Criterion {
            mode: Mode::Bench,
            ..Criterion::default()
        };
        c.measurement_time(Duration::from_millis(20)).sample_size(3);
        let mut ran = 0u32;
        c.bench_function("trivial", |b| {
            b.iter(|| {
                ran += 1;
                black_box(1 + 1)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn test_mode_runs_body_exactly_once() {
        let mut b = Bencher {
            mode: Mode::Test,
            samples: 10,
            budget: Duration::from_secs(1),
            results: Vec::new(),
        };
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.results.is_empty());
    }
}
