//! Vendored offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::thread::scope` + `Scope::spawn`
//! (crossbeam's pre-1.63 scoped threads). Since Rust 1.63 the standard
//! library provides `std::thread::scope`; this shim adapts it to
//! crossbeam's signature, whose two observable differences are:
//!
//! 1. `scope` returns `Result<R, Box<dyn Any + Send>>` instead of
//!    propagating child panics — recovered here with `catch_unwind`;
//! 2. spawned closures receive the scope as an argument (`|scope| ...`),
//!    enabling nested spawns.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scoped threads in crossbeam's API shape.
pub mod thread {
    use super::*;

    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// child closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The child closure receives the scope,
        /// mirroring crossbeam (callers that don't nest write `|_| ...`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing, non-`'static` threads can
    /// be spawned; joins them all before returning. Returns `Err` with the
    /// panic payload if the closure or any child thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn workers_mutate_disjoint_borrowed_chunks() {
        let mut data = vec![0u64; 64];
        thread::scope(|scope| {
            for (w, chunk) in data.chunks_mut(16).enumerate() {
                scope.spawn(move |_| {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = (w * 16 + i) as u64;
                    }
                });
            }
        })
        .expect("no panics");
        assert_eq!(data, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_receives_usable_scope() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .expect("no panics");
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
