//! Vendored offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact* API subset it consumes — nothing more:
//!
//! * [`rngs::SmallRng`] — a small, fast, non-cryptographic generator
//!   (xoshiro256++, the same family the real `SmallRng` uses on 64-bit
//!   targets), seeded via [`SeedableRng::seed_from_u64`] (SplitMix64 key
//!   expansion, as in the real crate);
//! * [`Rng::random`] / [`Rng::random_range`] — the `rand 0.9` method names;
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Streams are deterministic per seed, which is all the workspace's
//! reproducibility contract (`RKNN_SEED` et al.) requires. The generator
//! constants match Blackman & Vigna's reference implementation, so swapping
//! the real `rand` + `rand_xoshiro` back in preserves behavior of everything
//! except the exact sample streams.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next `u64` in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Deterministically derives generator state from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Distribution of values produced by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one value from the rng's stream.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias < 2^-64 is
                // irrelevant for the workspace's statistical tests.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                // Span arithmetic in u64 so `hi == MAX` cannot overflow
                // (`hi - lo` always fits; only the full u64 domain needs
                // the wrap-free special case).
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let hi64 = ((rng.next_u64() as u128 * (span + 1) as u128) >> 64) as u64;
                lo + hi64 as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardUniform>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
impl_float_range!(f64, f32);

/// High-level sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (floats: uniform `[0, 1)`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small fast generator behind the real
    /// `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut key = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut key);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce it from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_with_correct_mean() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_sampling_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let i = rng.random_range(0usize..10);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 buckets hit: {seen:?}");
        for _ in 0..100 {
            let x = rng.random_range(-3.0f64..5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn inclusive_range_handles_type_max_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..200 {
            let x = rng.random_range(250u8..=u8::MAX);
            assert!(x >= 250);
            let y = rng.random_range(u64::MAX - 3..=u64::MAX);
            assert!(y >= u64::MAX - 3);
            let z = rng.random_range(0u64..=u64::MAX);
            let _ = z; // full domain: any value is valid
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
