//! # rknn — Dimensional Testing for Reverse k-Nearest Neighbor Search
//!
//! A from-scratch Rust reproduction of Casanova, Englmeier, Houle, Kröger,
//! Nett, Schubert and Zimek, *Dimensional Testing for Reverse k-Nearest
//! Neighbor Search*, PVLDB 10(7): 769–780, 2017.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] — datasets, metrics, ranks, brute-force references;
//! * [`index`] — forward-NN substrates (linear scan, cover tree, VP-tree,
//!   R-tree, M-tree) with incremental NN cursors;
//! * [`lid`] — intrinsic-dimensionality estimators (GED/MaxGED, Hill MLE,
//!   Grassberger–Procaccia, Takens);
//! * [`rdt`] — the paper's contribution: RDT and RDT+ reverse-kNN queries by
//!   dimensional testing;
//! * [`baselines`] — SFT, MRkNNCoP, RdNN-Tree and TPL comparison methods;
//! * [`data`] — synthetic dataset generators matching the evaluation's
//!   intrinsic-dimensional structure;
//! * [`eval`] — the experiment harness regenerating every paper table and
//!   figure;
//! * [`serve`] — the long-lived concurrent serving engine: epoch-swapped
//!   immutable snapshots, a sharded work-stealing query executor with
//!   bounded queues, and an open-loop latency harness.
//!
//! ## Quick start
//!
//! ```
//! use rknn::prelude::*;
//!
//! // A small clustered dataset and a forward-kNN substrate over it.
//! let ds = rknn::data::gaussian_blobs(500, 8, 4, 0.3, 42).into_shared();
//! let index = CoverTree::build(ds.clone(), Euclidean);
//!
//! // Reverse 10-NN query by dimensional testing with scale parameter t = 6.
//! let rdt = Rdt::new(RdtParams::new(10, 6.0));
//! let answer = rdt.query(&index, 0);
//!
//! // Every reported point has the query among its 10 nearest neighbors.
//! let brute = BruteForce::new(ds, Euclidean);
//! let mut st = SearchStats::new();
//! let truth = brute.rknn(0, 10, &mut st);
//! assert!(answer.result.iter().all(|n| truth.iter().any(|t| t.id == n.id)));
//! ```

pub use rknn_baselines as baselines;
pub use rknn_core as core;
pub use rknn_data as data;
pub use rknn_eval as eval;
pub use rknn_index as index;
pub use rknn_lid as lid;
pub use rknn_rdt as rdt;
pub use rknn_serve as serve;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use rknn_baselines::{
        MRkNNCoP, MrknncopAlgorithm, NaiveRknn, RdnnAlgorithm, RdnnTree, Sft, Tpl, TplAlgorithm,
    };
    pub use rknn_core::{
        BruteForce, Dataset, DatasetBuilder, Euclidean, Manhattan, Metric, Neighbor, PointId,
        QueryScratch, SearchStats,
    };
    pub use rknn_index::{
        BallTree, CoverTree, KnnIndex, LinearScan, MTree, NnCursor, RTree, VpTree,
    };
    pub use rknn_lid::{GedEstimator, HillEstimator, IdEstimator};
    pub use rknn_rdt::algorithm::{run_algorithm_all_points, run_algorithm_batch};
    pub use rknn_rdt::batch::{run_all_points, run_batch};
    pub use rknn_rdt::{
        BatchConfig, BatchOutcome, MaintainedStream, Rdt, RdtAlgorithm, RdtParams, RdtPlus,
        RknnAlgorithm, RknnAnswer, UpdateReport,
    };
    pub use rknn_serve::{
        Engine, EngineConfig, FaultPlan, Priority, QueryError, QueryRequest, QueryResponse,
        RetryPolicy, Snapshot, Ticket,
    };
}
